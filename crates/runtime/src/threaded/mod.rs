//! The tier-2 closure-threaded engine: compiles a body's bytecode
//! ([`Code`]) into a flat array of monomorphized fn-pointer ops
//! ([`TOp`]) with pre-resolved operands, replacing the VM's pc-driven
//! `match` dispatch with one indirect call per op.
//!
//! Declared as a child module of [`crate::interp`] — like the bytecode VM
//! and the enforcement seam — so the ops call straight into the same
//! private machinery (heap, invoke, snapshot, builtins, inline caches,
//! events, profiler). Threaded execution is *observationally identical*
//! to the bytecode VM: same gas charges in the same order, same errors,
//! same stats, same events; the only new observable is the perf-only
//! [`crate::TierStats`] counters, which deliberately live outside
//! [`crate::RunStats`].
//!
//! # Dispatch
//!
//! Every op returns the next pc as a bare `u32` — the hot loop is one
//! indirect call, one compare against [`R_DEOPT`], one assignment. The
//! four rare continuations (deopt, error, `return`, done) are folded
//! into the top of the `u32` range as sentinels, with their payloads
//! parked in the activation's [`TState`]; returning a scalar keeps the
//! common path free of the by-memory enum returns a `Ctl`-style control
//! type would force.
//!
//! # The deopt contract
//!
//! Threaded ops stay **pc-aligned** with the bytecode stream: `ops[pc]`
//! executes exactly `instrs[pc]` (fused *shapes* are inherited from the
//! bytecode compiler's superinstructions — `BinF`, `JmpBinF`, tail
//! self-send chaining — so alignment costs no fusion). Alignment is what
//! makes deopt trivial and total: a guarded op that must bail hands its
//! live frame, pc, and `try`-handler stack to [`Interp::exec_from`] with
//! no side tables, reconstruction, or restrictions on where it may
//! happen. Every guard bails *before* its op has any observable effect
//! (or, for the fault-epoch guard, precisely after the op completed), so
//! the bytecode VM re-executes from an interpreter state bit-identical to
//! the one it would have reached on its own.
//!
//! # The guard set
//!
//! * **Enforcement** — bodies are compiled against the guarded strategy's
//!   semantics (the only one that may elide tail self-sends); a transient
//!   run deopts at body entry.
//! * **Mode window** — under fault injection with a decision window, a
//!   pending mode decision (snapshot or `<|`) deopts when the window has
//!   rolled since body entry, leaving window-sensitive slow paths to the
//!   VM.
//! * **IC monomorphism** — a send site whose inline cache keeps missing
//!   deopts as megamorphic once its per-run miss counter crosses
//!   [`MEGAMORPHIC_MISSES`].
//! * **Fault epoch** — a sensor read that came back faulted bumps the
//!   injector epoch; the rest of the body defers to the VM, which owns
//!   the degradation ladder.

use ent_syntax::UnOp;
use std::sync::Arc;

use super::vm::{binop_fast, ArmIc};
use super::{DeoptReason, Enforcement, Frame, Interp, RtTag};
use crate::compile::{Code, Op, Opnd};
use crate::error::{Flow, RtError};
use crate::lower::BOp;
use crate::profile::AnyProfiler;
use crate::value::Value;

/// One threaded op: the monomorphized handler plus its pre-resolved
/// payload. Field meaning is per-handler (documented at each handler);
/// broadly `a` is the destination register, `b`/`c` source indices, `d` a
/// site index or jump target, and `k`/`k2` pre-resolved constants.
pub(crate) struct TOp {
    run: TFn,
    gas: u16,
    a: u16,
    b: u16,
    c: u16,
    /// Mid-op gas for fused binops (charged between the operand reads,
    /// exactly like the VM).
    rgas: u16,
    d: u32,
    /// Interned-name index of the lhs slot operand (error messages).
    n1: u32,
    /// Interned-name index of the rhs slot operand.
    n2: u32,
    bin: ent_syntax::BinOp,
    /// Pre-resolved lhs constant (also the `Const` payload).
    k: Value,
    /// Pre-resolved rhs constant.
    k2: Value,
}

/// A compiled body: one [`TOp`] per bytecode instruction, pc-aligned
/// (see the module docs for why alignment *is* the deopt contract).
pub(crate) struct TCode {
    ops: Box<[TOp]>,
}

impl std::fmt::Debug for TCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TCode({} ops)", self.ops.len())
    }
}

/// Per-activation threaded state: the live `try`-handler stack (bytecode
/// pcs, handed to the VM verbatim on deopt), the energy-decision window
/// observed at body entry (the mode-window guard's baseline), and the
/// parking slots for sentinel-return payloads (see the module docs on
/// dispatch).
struct TState {
    tries: Vec<u32>,
    entry_window: u64,
    /// `return`/completion value ([`R_RET`] / [`R_DONE`]).
    out: Value,
    /// Error or energy exception ([`R_ERR`]).
    flow: Option<Flow>,
    /// Why the body is bailing ([`R_DEOPT`]).
    deopt: DeoptReason,
    /// Bytecode pc the VM resumes at ([`R_DEOPT`]).
    deopt_pc: u32,
}

/// An op's `u32` return is the next pc when below [`R_DEOPT`]; the top
/// four values are reserved as sentinels (bodies are bounded far below
/// by [`compile_threaded`]'s length assertion).
const R_DEOPT: u32 = u32::MAX - 3;
/// An error or energy exception is parked in [`TState::flow`].
const R_ERR: u32 = u32::MAX - 2;
/// A `return` value is parked in [`TState::out`].
const R_RET: u32 = u32::MAX - 1;
/// The body completed; the result is parked in [`TState::out`].
const R_DONE: u32 = u32::MAX;

type TFn = for<'p> fn(&mut Interp<'p>, &mut Frame, &'p Code, &[TOp], &mut TState, u32) -> u32;

/// One bytecode op's threaded behavior, as a zero-sized type so op
/// *sequences* compose by monomorphization: [`plain`] wraps one body
/// into a [`TFn`]; [`fused`] inlines two consecutive bodies into a
/// single handler, eliminating the dispatch between them.
trait OpBody {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32;
}

/// The single-op handler: runs `ops[pc]`'s body.
fn plain<'p, B: OpBody>(
    it: &mut Interp<'p>,
    frame: &mut Frame,
    code: &'p Code,
    ops: &[TOp],
    st: &mut TState,
    pc: u32,
) -> u32 {
    B::run(it, frame, code, ops, st, pc)
}

/// The fused pair handler: runs `ops[pc]`'s body and, iff it falls
/// through (returns `pc + 1` — whether as its static successor or as a
/// branch that happens to target it), continues straight into
/// `ops[pc + 1]`'s body without returning to the dispatch loop. Errors,
/// deopts, and jumps elsewhere pass through unchanged, and the second
/// body reports `pc + 1` as its own pc, so gas order, error sites, and
/// deopt resume points are exactly the unfused sequence's.
fn fused<'p, A: OpBody, B: OpBody>(
    it: &mut Interp<'p>,
    frame: &mut Frame,
    code: &'p Code,
    ops: &[TOp],
    st: &mut TState,
    pc: u32,
) -> u32 {
    Fused2::<A, B>::run(it, frame, code, ops, st, pc)
}

/// Two consecutive bodies as one body — itself an [`OpBody`], so pairs
/// nest into triples (`Fused2<A, Fused2<B, C>>`) and beyond.
struct Fused2<A, B>(std::marker::PhantomData<(A, B)>);

impl<A: OpBody, B: OpBody> OpBody for Fused2<A, B> {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let r = A::run(it, frame, code, ops, st, pc);
        if r != pc + 1 {
            return r;
        }
        B::run(it, frame, code, ops, st, pc + 1)
    }
}

/// Send-site IC misses tolerated per run before the site deopts as
/// megamorphic. Small enough that a genuinely polymorphic site bails
/// within a few calls; large enough that the one cold miss plus a couple
/// of honest transitions keep the fast path.
const MEGAMORPHIC_MISSES: u8 = 4;

/// Parks an error for the driver; out-of-line so op bodies keep their
/// fallible edges off the hot path.
#[cold]
#[inline(never)]
fn throw(st: &mut TState, f: Flow) -> u32 {
    st.flow = Some(f);
    R_ERR
}

/// Parks a deopt request: the VM resumes at `pc`.
#[cold]
#[inline(never)]
fn deopt_at(st: &mut TState, pc: u32, r: DeoptReason) -> u32 {
    st.deopt = r;
    st.deopt_pc = pc;
    R_DEOPT
}

/// Routes an op's fallible step to the driver as [`R_ERR`].
macro_rules! tt {
    ($st:ident, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(f) => return throw($st, f),
        }
    };
}

/// Charges the op's head gas (the VM charges per instruction head; the
/// threaded tier charges identically so step counts — and therefore
/// out-of-gas points and profiler attribution — never diverge).
macro_rules! charge {
    ($it:ident, $t:ident, $st:ident) => {
        if $t.gas != 0 {
            tt!($st, $it.gas_n(u64::from($t.gas)));
        }
    };
}

macro_rules! take {
    ($frame:ident, $r:expr) => {
        std::mem::replace(&mut $frame.locals[$r as usize], Value::Unit)
    };
}

macro_rules! take_n {
    ($frame:ident, $base:expr, $n:expr) => {{
        let base = $base as usize;
        let mut vals = Vec::with_capacity($n as usize);
        for r in base..base + $n as usize {
            vals.push(take!($frame, r));
        }
        vals
    }};
}

/// Forces a mode case to its arm at the frame's mode; any other value
/// passes through (the VM's `matches!(v, MCase(_))` pattern).
macro_rules! forced {
    ($it:ident, $frame:ident, $st:ident, $v:expr) => {{
        let v = $v;
        if matches!(v, Value::MCase(_)) {
            tt!($st, $it.force($frame, v))
        } else {
            v
        }
    }};
}

/// Enters a compiled body. The enforcement guard lives here: only the
/// guarded strategy's semantics are compiled, so a transient run counts
/// an [`DeoptReason::Enforcement`] deopt and executes on the VM.
pub(super) fn enter<'p>(
    it: &mut Interp<'p>,
    frame: &mut Frame,
    code: &'p Code,
    tcode: &TCode,
) -> super::EvalResult {
    it.tier.threaded_entries += 1;
    if !matches!(it.config.enforcement, Enforcement::Guarded) {
        it.tier.deopt(DeoptReason::Enforcement);
        return it.exec(frame, code);
    }
    // Tail elision bumps `depth` per elided logical frame; all of them
    // pop together when this activation exits — including via deopt,
    // whose nested `exec_from` runs inside this save/restore.
    let depth_on_entry = it.depth;
    let result = run_loop(it, frame, code, tcode);
    it.depth = depth_on_entry;
    result
}

fn run_loop<'p>(
    it: &mut Interp<'p>,
    frame: &mut Frame,
    code: &'p Code,
    tcode: &TCode,
) -> super::EvalResult {
    let mut st = TState {
        tries: Vec::new(),
        entry_window: it.decision_window(),
        out: Value::Unit,
        flow: None,
        deopt: DeoptReason::Enforcement,
        deopt_pc: 0,
    };
    let ops = &tcode.ops;
    let mut pc: u32 = 0;
    loop {
        let next = (ops[pc as usize].run)(it, frame, code, ops, &mut st, pc);
        if next < R_DEOPT {
            pc = next;
            continue;
        }
        match next {
            R_ERR => {
                let f = st.flow.take().expect("R_ERR parks a flow");
                if matches!(&f, Flow::Error(RtError::EnergyException(_))) {
                    if let Some(h) = st.tries.pop() {
                        pc = h;
                        continue;
                    }
                }
                return Err(f);
            }
            R_RET => return Err(Flow::Return(std::mem::replace(&mut st.out, Value::Unit))),
            R_DONE => return Ok(std::mem::replace(&mut st.out, Value::Unit)),
            _ => {
                it.tier.deopt(st.deopt);
                return it.exec_from(
                    frame,
                    code,
                    st.deopt_pc as usize,
                    std::mem::take(&mut st.tries),
                );
            }
        }
    }
}

// ---- compilation ----------------------------------------------------------

/// Operand-kind tags for the monomorphized fused-binop variants.
const K_REG: u8 = 0;
const K_SLOT: u8 = 1;
const K_CST: u8 = 2;

/// Binop tags for the op-monomorphized binop variants: the compiler knows
/// each site's [`ent_syntax::BinOp`], so the handler is selected with the
/// operator baked in and the scalar lanes compile to straight-line
/// arithmetic (no runtime operator dispatch). [`OP_GEN`] is the
/// catch-all for operators without a scalar lane (`&&`, `||`, string
/// concat), which run the generic [`binop_fast`] / `apply_binop` path.
const OP_GEN: u8 = 0;
const OP_ADD: u8 = 1;
const OP_SUB: u8 = 2;
const OP_MUL: u8 = 3;
const OP_DIV: u8 = 4;
const OP_REM: u8 = 5;
const OP_LT: u8 = 6;
const OP_LE: u8 = 7;
const OP_GT: u8 = 8;
const OP_GE: u8 = 9;
const OP_EQ: u8 = 10;
const OP_NE: u8 = 11;

/// A scalar-decoded operand: the int/double fast lanes carry the bare
/// machine value (no 24-byte `Value` round trip through the register
/// file); everything else rides the general boxed lane.
enum Sc {
    I(i64),
    D(f64),
    V(Value),
}

impl Sc {
    #[inline(always)]
    fn into_value(self) -> Value {
        match self {
            Sc::I(n) => Value::Int(n),
            Sc::D(x) => Value::Double(x),
            Sc::V(v) => v,
        }
    }
}

/// Scalar-lane operand read, monomorphized per kind. Same error order as
/// [`fetch`]; int/double reads skip the enum clone (and, for registers,
/// the dead-store of `Unit` — a consumed temp register is never re-read,
/// by the bytecode compiler's single-use discipline the VM's own
/// take-and-replace relies on, and stale scalar bits carry no drop glue).
#[inline(always)]
fn fetch_sc<const KIND: u8>(
    frame: &mut Frame,
    code: &Code,
    idx: u16,
    name: u32,
    k: &Value,
) -> Result<Sc, Flow> {
    match KIND {
        K_REG => {
            let slot = &mut frame.locals[idx as usize];
            match &mut *slot {
                Value::Int(n) => Ok(Sc::I(*n)),
                Value::Double(x) => Ok(Sc::D(*x)),
                _ => Ok(Sc::V(std::mem::replace(slot, Value::Unit))),
            }
        }
        K_SLOT => {
            let slot = u32::from(idx);
            if slot >= frame.unbound_lo && slot < frame.n_params {
                return Err(RtError::Native(format!(
                    "unbound variable `{}`",
                    code.names[name as usize]
                ))
                .into());
            }
            match &frame.locals[idx as usize] {
                Value::Int(n) => Ok(Sc::I(*n)),
                Value::Double(x) => Ok(Sc::D(*x)),
                v => Ok(Sc::V(v.clone())),
            }
        }
        _ => match k {
            Value::Int(n) => Ok(Sc::I(*n)),
            Value::Double(x) => Ok(Sc::D(*x)),
            _ => Ok(Sc::V(k.clone())),
        },
    }
}

/// The op-monomorphized scalar binop: `Some` on a fast lane, `None` to
/// fall back to the generic path (which re-derives the same result —
/// the lanes mirror [`binop_fast`]'s int/double arms exactly, including
/// falling back on division by zero so the error site is unchanged).
#[inline(always)]
fn bin_sc<const P: u8>(l: &Sc, r: &Sc) -> Option<Value> {
    match (l, r) {
        (Sc::I(a), Sc::I(b)) => {
            let (a, b) = (*a, *b);
            Some(match P {
                OP_ADD => Value::Int(a.wrapping_add(b)),
                OP_SUB => Value::Int(a.wrapping_sub(b)),
                OP_MUL => Value::Int(a.wrapping_mul(b)),
                OP_DIV if b != 0 => Value::Int(a.wrapping_div(b)),
                OP_REM if b != 0 => Value::Int(a.wrapping_rem(b)),
                OP_LT => Value::Bool(a < b),
                OP_LE => Value::Bool(a <= b),
                OP_GT => Value::Bool(a > b),
                OP_GE => Value::Bool(a >= b),
                OP_EQ => Value::Bool(a == b),
                OP_NE => Value::Bool(a != b),
                _ => return None,
            })
        }
        (Sc::D(a), Sc::D(b)) => {
            let (a, b) = (*a, *b);
            Some(match P {
                OP_ADD => Value::Double(a + b),
                OP_SUB => Value::Double(a - b),
                OP_MUL => Value::Double(a * b),
                OP_DIV => Value::Double(a / b),
                OP_REM => Value::Double(a % b),
                OP_LT => Value::Bool(a < b),
                OP_LE => Value::Bool(a <= b),
                OP_GT => Value::Bool(a > b),
                OP_GE => Value::Bool(a >= b),
                OP_EQ => Value::Bool(a == b),
                OP_NE => Value::Bool(a != b),
                _ => return None,
            })
        }
        _ => None,
    }
}

/// The comparison lanes as a bare `bool` — guard ops branch directly on
/// the machine compare without materializing a `Value::Bool`.
#[inline(always)]
fn cmp_sc<const P: u8>(l: &Sc, r: &Sc) -> Option<bool> {
    match (l, r) {
        (Sc::I(a), Sc::I(b)) => Some(match P {
            OP_LT => a < b,
            OP_LE => a <= b,
            OP_GT => a > b,
            OP_GE => a >= b,
            OP_EQ => a == b,
            OP_NE => a != b,
            _ => return None,
        }),
        (Sc::D(a), Sc::D(b)) => Some(match P {
            OP_LT => a < b,
            OP_LE => a <= b,
            OP_GT => a > b,
            OP_GE => a >= b,
            OP_EQ => a == b,
            OP_NE => a != b,
            _ => return None,
        }),
        _ => None,
    }
}

/// Applies the scalar-lane force discipline: int/double lanes cannot be
/// mode cases, so only the boxed lane pays the check.
macro_rules! forced_sc {
    ($it:ident, $frame:ident, $st:ident, $v:expr) => {{
        match $v {
            Sc::V(v) => Sc::V(forced!($it, $frame, $st, v)),
            sc => sc,
        }
    }};
}

/// Pre-resolves a fused operand: `(kind, index, name, constant)`.
fn pre_opnd(code: &Code, o: &Opnd) -> (u8, u16, u32, Value) {
    match *o {
        Opnd::Reg(r) => (K_REG, r, 0, Value::Unit),
        Opnd::Slot { slot, name } => (K_SLOT, slot, name, Value::Unit),
        Opnd::Cst(k) => (K_CST, k, 0, code.consts[k as usize].clone()),
    }
}

/// Selects the monomorphized `BinF` (or `JmpBinF`) body for a site's
/// operand kinds at a fixed op tag, and hands the concrete type to a
/// caller-supplied wrapper macro — the one selection table serves every
/// fusion shape (single op, pair, or triple, with the fused binop in any
/// position).
macro_rules! sel_binf {
    ($base:ident, $lr:expr, $p:ident, $w:ident) => {
        match $lr {
            (K_REG, K_REG) => $w!($base<K_REG, K_REG, $p>),
            (K_REG, K_SLOT) => $w!($base<K_REG, K_SLOT, $p>),
            (K_REG, _) => $w!($base<K_REG, K_CST, $p>),
            (K_SLOT, K_REG) => $w!($base<K_SLOT, K_REG, $p>),
            (K_SLOT, K_SLOT) => $w!($base<K_SLOT, K_SLOT, $p>),
            (K_SLOT, _) => $w!($base<K_SLOT, K_CST, $p>),
            (_, K_REG) => $w!($base<K_CST, K_REG, $p>),
            (_, K_SLOT) => $w!($base<K_CST, K_SLOT, $p>),
            _ => $w!($base<K_CST, K_CST, $p>),
        }
    };
}

/// Maps a site's [`ent_syntax::BinOp`] to the matching op tag and
/// dispatches to [`sel_binf`] — full (kinds × op) monomorphization.
macro_rules! sel_op {
    ($base:ident, $lr:expr, $op:expr, $w:ident) => {
        match $op {
            ent_syntax::BinOp::Add => sel_binf!($base, $lr, OP_ADD, $w),
            ent_syntax::BinOp::Sub => sel_binf!($base, $lr, OP_SUB, $w),
            ent_syntax::BinOp::Mul => sel_binf!($base, $lr, OP_MUL, $w),
            ent_syntax::BinOp::Div => sel_binf!($base, $lr, OP_DIV, $w),
            ent_syntax::BinOp::Rem => sel_binf!($base, $lr, OP_REM, $w),
            ent_syntax::BinOp::Lt => sel_binf!($base, $lr, OP_LT, $w),
            ent_syntax::BinOp::Le => sel_binf!($base, $lr, OP_LE, $w),
            ent_syntax::BinOp::Gt => sel_binf!($base, $lr, OP_GT, $w),
            ent_syntax::BinOp::Ge => sel_binf!($base, $lr, OP_GE, $w),
            ent_syntax::BinOp::Eq => sel_binf!($base, $lr, OP_EQ, $w),
            ent_syntax::BinOp::Ne => sel_binf!($base, $lr, OP_NE, $w),
            _ => sel_binf!($base, $lr, OP_GEN, $w),
        }
    };
}

/// Op-tag selection for the register-operand binops (`Bin`, `JmpBin`),
/// which have no operand-kind dimension.
macro_rules! sel_bin {
    ($base:ident, $op:expr, $w:ident) => {
        match $op {
            ent_syntax::BinOp::Add => $w!($base<OP_ADD>),
            ent_syntax::BinOp::Sub => $w!($base<OP_SUB>),
            ent_syntax::BinOp::Mul => $w!($base<OP_MUL>),
            ent_syntax::BinOp::Div => $w!($base<OP_DIV>),
            ent_syntax::BinOp::Rem => $w!($base<OP_REM>),
            ent_syntax::BinOp::Lt => $w!($base<OP_LT>),
            ent_syntax::BinOp::Le => $w!($base<OP_LE>),
            ent_syntax::BinOp::Gt => $w!($base<OP_GT>),
            ent_syntax::BinOp::Ge => $w!($base<OP_GE>),
            ent_syntax::BinOp::Eq => $w!($base<OP_EQ>),
            ent_syntax::BinOp::Ne => $w!($base<OP_NE>),
            _ => $w!($base<OP_GEN>),
        }
    };
}

/// The monomorphized `BinF` single-op handler for a site's operand kinds
/// and operator.
fn binf_fn(l: u8, r: u8, op: ent_syntax::BinOp) -> TFn {
    macro_rules! w {
        ($t:ty) => {
            plain::<$t>
        };
    }
    sel_op!(BinFB, (l, r), op, w)
}

/// The monomorphized `JmpBinF` single-op handler for a site's operand
/// kinds and operator.
fn jmp_binf_fn(l: u8, r: u8, op: ent_syntax::BinOp) -> TFn {
    macro_rules! w {
        ($t:ty) => {
            plain::<$t>
        };
    }
    sel_op!(JmpBinFB, (l, r), op, w)
}

/// Whether the `CallM` at `pc` compiles to [`TailCallB`]: a
/// `this`-receiver full-arity send whose result feeds a gasless `Ret`.
/// The runtime half of the guard lives in `op_tail_call`.
fn is_tail_shape(code: &Code, pc: usize) -> bool {
    let i = &code.instrs[pc];
    let site = &code.calls[i.d as usize];
    site.this_recv
        && site.mode_args.is_empty()
        && code
            .instrs
            .get(pc + 1)
            .is_some_and(|next| next.op == Op::Ret && next.b == i.a && next.gas == 0)
}

/// Whether the `CallB` at `pc` compiles to [`CallBSensorB`] (a sensor
/// builtin carrying the fault-epoch deopt guard).
fn is_sensor(code: &Code, pc: usize) -> bool {
    let site = &code.builtins[code.instrs[pc].d as usize];
    matches!(site.op, BOp::ExtBattery | BOp::ExtTemperature)
}

/// The operand kinds of a fused-binop site (for selecting monomorphized
/// variants in the peephole pass).
fn site_kinds(code: &Code, site: u32) -> (u8, u8) {
    let site = &code.fused[site as usize];
    let kind = |o: &Opnd| match o {
        Opnd::Reg(_) => K_REG,
        Opnd::Slot { .. } => K_SLOT,
        Opnd::Cst(_) => K_CST,
    };
    (kind(&site.lhs), kind(&site.rhs))
}

/// Compiles a body's bytecode into pc-aligned threaded ops. Pure and
/// deterministic: payloads are pre-resolved from `code` alone, so the
/// result is shared program-wide exactly like the bytecode it mirrors.
pub(crate) fn compile_threaded(code: &Code) -> TCode {
    // Next-pc returns share the u32 range with the four sentinels; real
    // bodies are nowhere near 4 billion ops.
    assert!(code.instrs.len() < R_DEOPT as usize);
    let mut ops = Vec::with_capacity(code.instrs.len());
    for (pc, i) in code.instrs.iter().enumerate() {
        let mut t = TOp {
            run: plain::<UnitB>,
            gas: i.gas,
            a: i.a,
            b: i.b,
            c: i.c,
            rgas: 0,
            d: i.d,
            n1: 0,
            n2: 0,
            bin: ent_syntax::BinOp::Add,
            k: Value::Unit,
            k2: Value::Unit,
        };
        t.run = match i.op {
            Op::Const => {
                t.k = code.consts[i.d as usize].clone();
                plain::<ConstB>
            }
            Op::Unit => plain::<UnitB>,
            Op::This => plain::<ThisB>,
            Op::Local => plain::<LocalB>,
            Op::Unbound => plain::<UnboundB>,
            Op::FieldGet => plain::<FieldGetB>,
            Op::FieldThis => plain::<FieldThisB>,
            Op::NewObj => plain::<NewObjB>,
            Op::NewUnknown => plain::<NewUnknownB>,
            Op::CallM => {
                if is_tail_shape(code, pc) {
                    plain::<TailCallB>
                } else {
                    plain::<CallMB>
                }
            }
            Op::CallB => {
                if is_sensor(code, pc) {
                    plain::<CallBSensorB>
                } else {
                    plain::<CallBB>
                }
            }
            Op::CastV => plain::<CastB>,
            Op::Snap => plain::<SnapB>,
            Op::MakeMCase => plain::<MakeMCaseB>,
            Op::ElimV => plain::<ElimB>,
            Op::Bin => {
                t.bin = code.bins[i.d as usize];
                macro_rules! w {
                    ($t:ty) => {
                        plain::<$t>
                    };
                }
                sel_bin!(BinB, t.bin, w)
            }
            Op::BinF => {
                let site = &code.fused[i.d as usize];
                t.bin = site.op;
                t.rgas = site.rgas;
                let (lk, li, ln, lc) = pre_opnd(code, &site.lhs);
                let (rk, ri, rn, rc) = pre_opnd(code, &site.rhs);
                t.b = li;
                t.c = ri;
                t.n1 = ln;
                t.n2 = rn;
                t.k = lc;
                t.k2 = rc;
                binf_fn(lk, rk, site.op)
            }
            Op::JmpBin => {
                t.bin = code.bins[i.c as usize];
                macro_rules! w {
                    ($t:ty) => {
                        plain::<$t>
                    };
                }
                sel_bin!(JmpBinB, t.bin, w)
            }
            Op::JmpBinF => {
                let site = &code.fused[i.a as usize];
                t.bin = site.op;
                t.rgas = site.rgas;
                let (lk, li, ln, lc) = pre_opnd(code, &site.lhs);
                let (rk, ri, rn, rc) = pre_opnd(code, &site.rhs);
                t.b = li;
                t.c = ri;
                t.n1 = ln;
                t.n2 = rn;
                t.k = lc;
                t.k2 = rc;
                jmp_binf_fn(lk, rk, site.op)
            }
            Op::Un => plain::<UnB>,
            Op::Jmp => plain::<JmpB>,
            Op::JmpIfFalse => plain::<JmpIfFalseB>,
            Op::ScJump => {
                t.bin = code.bins[i.c as usize];
                plain::<ScJumpB>
            }
            Op::ScForce => {
                t.bin = code.bins[i.c as usize];
                plain::<ScForceB>
            }
            Op::Force => plain::<ForceB>,
            Op::ArrLit => plain::<ArrLitB>,
            Op::Ret => plain::<RetB>,
            Op::Halt => plain::<HaltB>,
            Op::TryPush => plain::<TryPushB>,
            Op::TryPop => plain::<TryPopB>,
        };
        ops.push(t);
    }
    fuse_pairs(code, &mut ops);
    TCode {
        ops: ops.into_boxed_slice(),
    }
}

/// The fusion peephole: rewrites an op's handler to a [`fused`] variant
/// (or a nested [`Fused2`] triple) that falls straight through into its
/// static successors' bodies, eliminating the dispatch between them.
/// Fusion never changes *what* runs — each later body still executes
/// against its own pc-aligned [`TOp`] payload and runs only when its
/// predecessor returned exactly the fall-through pc, so gas order, error
/// sites, deopt resume points, and jump targets (a branch *into* the
/// middle of a chain runs that op's own handler) are exactly the unfused
/// sequence's. The whitelist covers the hottest dynamic pairs and triples
/// on the Figure-6 suite; heavyweight send bodies join a chain only as
/// its last element, where the saved dispatch still pays.
fn fuse_pairs(code: &Code, ops: &mut [TOp]) {
    for pc in 0..ops.len().saturating_sub(1) {
        let (i, j) = (&code.instrs[pc], &code.instrs[pc + 1]);
        // Triples before pairs: the longer chain subsumes its prefix.
        // Interior ops keep their own (possibly pair-fused) handlers, so
        // a jump into the middle of a chain is still valid.
        if pc + 2 < ops.len() {
            let k = &code.instrs[pc + 2];
            let run: Option<TFn> = match (i.op, j.op, k.op) {
                (Op::JmpBinF, Op::Local, Op::Ret) => {
                    let s = &code.fused[i.a as usize];
                    macro_rules! w {
                        ($t:ty) => {
                            Some(fused::<$t, Fused2<LocalB, RetB>>)
                        };
                    }
                    sel_op!(JmpBinFB, site_kinds(code, i.a as u32), s.op, w)
                }
                (Op::BinF, Op::Local, Op::Force) => {
                    let s = &code.fused[i.d as usize];
                    macro_rules! w {
                        ($t:ty) => {
                            Some(fused::<$t, Fused2<LocalB, ForceB>>)
                        };
                    }
                    sel_op!(BinFB, site_kinds(code, i.d), s.op, w)
                }
                (Op::Unit, Op::BinF, Op::Local) => {
                    let s = &code.fused[j.d as usize];
                    macro_rules! w {
                        ($t:ty) => {
                            Some(fused::<UnitB, Fused2<$t, LocalB>>)
                        };
                    }
                    sel_op!(BinFB, site_kinds(code, j.d), s.op, w)
                }
                (Op::Local, Op::Force, Op::BinF) => {
                    let s = &code.fused[k.d as usize];
                    macro_rules! w {
                        ($t:ty) => {
                            Some(fused::<LocalB, Fused2<ForceB, $t>>)
                        };
                    }
                    sel_op!(BinFB, site_kinds(code, k.d), s.op, w)
                }
                (Op::Local, Op::Force, Op::Local) => Some(fused::<LocalB, Fused2<ForceB, LocalB>>),
                (Op::Force, Op::Local, Op::CallB) => Some(if is_sensor(code, pc + 2) {
                    fused::<ForceB, Fused2<LocalB, CallBSensorB>>
                } else {
                    fused::<ForceB, Fused2<LocalB, CallBB>>
                }),
                _ => None,
            };
            if let Some(run) = run {
                ops[pc].run = run;
                continue;
            }
        }
        let run: TFn = match (i.op, j.op) {
            (Op::Local, Op::Force) => fused::<LocalB, ForceB>,
            (Op::Local, Op::Local) => fused::<LocalB, LocalB>,
            (Op::Force, Op::Local) => fused::<ForceB, LocalB>,
            (Op::Force, Op::Force) => fused::<ForceB, ForceB>,
            (Op::Const, Op::Local) => fused::<ConstB, LocalB>,
            (Op::Local, Op::Const) => fused::<LocalB, ConstB>,
            (Op::Const, Op::Ret) => fused::<ConstB, RetB>,
            (Op::Local, Op::Ret) => fused::<LocalB, RetB>,
            // A fused tail self-send restarts the loop at pc 0 on
            // elision (never pc + 1, bodies are non-empty), so the
            // `Ret` half runs only on the non-elided fallback path —
            // exactly the unfused sequence.
            (Op::CallM, Op::Ret) => {
                if is_tail_shape(code, pc) {
                    fused::<TailCallB, RetB>
                } else {
                    fused::<CallMB, RetB>
                }
            }
            (Op::Local, Op::CallB) => {
                if is_sensor(code, pc + 1) {
                    fused::<LocalB, CallBSensorB>
                } else {
                    fused::<LocalB, CallBB>
                }
            }
            (Op::Local, Op::BinF) => {
                let s = &code.fused[j.d as usize];
                macro_rules! w {
                    ($t:ty) => {
                        fused::<LocalB, $t>
                    };
                }
                sel_op!(BinFB, site_kinds(code, j.d), s.op, w)
            }
            (Op::Unit, Op::BinF) => {
                let s = &code.fused[j.d as usize];
                macro_rules! w {
                    ($t:ty) => {
                        fused::<UnitB, $t>
                    };
                }
                sel_op!(BinFB, site_kinds(code, j.d), s.op, w)
            }
            (Op::Force, Op::BinF) => {
                let s = &code.fused[j.d as usize];
                macro_rules! w {
                    ($t:ty) => {
                        fused::<ForceB, $t>
                    };
                }
                sel_op!(BinFB, site_kinds(code, j.d), s.op, w)
            }
            (Op::BinF, Op::Local) => {
                let s = &code.fused[i.d as usize];
                macro_rules! w {
                    ($t:ty) => {
                        fused::<$t, LocalB>
                    };
                }
                sel_op!(BinFB, site_kinds(code, i.d), s.op, w)
            }
            (Op::BinF, Op::Force) => {
                let s = &code.fused[i.d as usize];
                macro_rules! w {
                    ($t:ty) => {
                        fused::<$t, ForceB>
                    };
                }
                sel_op!(BinFB, site_kinds(code, i.d), s.op, w)
            }
            (Op::JmpBinF, Op::Local) => {
                let s = &code.fused[i.a as usize];
                macro_rules! w {
                    ($t:ty) => {
                        fused::<$t, LocalB>
                    };
                }
                sel_op!(JmpBinFB, site_kinds(code, i.a as u32), s.op, w)
            }
            (Op::JmpBinF, Op::Const) => {
                let s = &code.fused[i.a as usize];
                macro_rules! w {
                    ($t:ty) => {
                        fused::<$t, ConstB>
                    };
                }
                sel_op!(JmpBinFB, site_kinds(code, i.a as u32), s.op, w)
            }
            _ => continue,
        };
        ops[pc].run = run;
    }
}

// ---- handlers -------------------------------------------------------------
//
// Each handler mirrors its VM arm action for action — same reads, same
// gas points, same error strings — with operand payloads pre-resolved
// into the `TOp`. Handlers return the next pc (or a sentinel).

struct ConstB;
impl OpBody for ConstB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        frame.locals[t.a as usize] = t.k.clone();
        pc + 1
    }
}

struct UnitB;
impl OpBody for UnitB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        frame.locals[t.a as usize] = Value::Unit;
        pc + 1
    }
}

struct ThisB;
impl OpBody for ThisB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let Some(r) = frame.this_ref else {
            return throw(
                st,
                RtError::Native("`this` outside an object context".into()).into(),
            );
        };
        frame.locals[t.a as usize] = Value::Obj(r);
        pc + 1
    }
}

struct LocalB;
impl OpBody for LocalB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let slot = u32::from(t.b);
        if slot >= frame.unbound_lo && slot < frame.n_params {
            return throw(
                st,
                RtError::Native(format!("unbound variable `{}`", code.names[t.d as usize])).into(),
            );
        }
        let v = frame.locals[t.b as usize].clone();
        frame.locals[t.a as usize] = v;
        pc + 1
    }
}

struct UnboundB;
impl OpBody for UnboundB {
    fn run<'p>(
        it: &mut Interp<'p>,
        _frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        throw(
            st,
            RtError::Native(format!("unbound variable `{}`", code.names[t.d as usize])).into(),
        )
    }
}

struct FieldGetB;
impl OpBody for FieldGetB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let site = &code.fields[t.d as usize];
        let r = match &frame.locals[t.b as usize] {
            Value::Obj(r) => *r,
            other => {
                return throw(
                    st,
                    RtError::Native(format!("field access on a {}", other.kind())).into(),
                )
            }
        };
        let v = tt!(st, it.read_field(frame, r, site.field, &site.name));
        frame.locals[t.a as usize] = v;
        pc + 1
    }
}

struct FieldThisB;
impl OpBody for FieldThisB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let site = &code.fields[t.d as usize];
        let Some(r) = frame.this_ref else {
            return throw(
                st,
                RtError::Native("`this` outside an object context".into()).into(),
            );
        };
        let v = tt!(st, it.read_field(frame, r, site.field, &site.name));
        frame.locals[t.a as usize] = v;
        pc + 1
    }
}

struct NewObjB;
impl OpBody for NewObjB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let site = &code.news[t.d as usize];
        let vals = take_n!(frame, t.b, site.n_args);
        let (mode, env) = tt!(st, it.resolve_new(frame, site.class, &site.plan));
        let r = tt!(st, it.allocate(site.class, vals, mode, env));
        frame.locals[t.a as usize] = Value::Obj(r);
        pc + 1
    }
}

struct NewUnknownB;
impl OpBody for NewUnknownB {
    fn run<'p>(
        it: &mut Interp<'p>,
        _frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        throw(
            st,
            RtError::Native(format!(
                "unknown class `{}`",
                code.unknown_classes[t.d as usize]
            ))
            .into(),
        )
    }
}

/// Bumps a send site's per-run IC miss counter; true once the site has
/// transitioned often enough to count as megamorphic.
fn poly_miss(it: &mut Interp<'_>, ic: u32) -> bool {
    let i = ic as usize;
    if it.ic_poly.len() <= i {
        it.ic_poly.resize(i + 1, 0);
    }
    let c = it.ic_poly[i].saturating_add(1);
    it.ic_poly[i] = c;
    c >= MEGAMORPHIC_MISSES
}

/// The generic send: resolves the receiver, applies the megamorphic
/// guard (before any register is consumed, so a deopt replays the site
/// on the VM from an untouched frame), then funnels through
/// [`Interp::invoke`] exactly like the VM.
fn call_site<'p>(
    it: &mut Interp<'p>,
    frame: &mut Frame,
    code: &'p Code,
    t: &TOp,
    st: &mut TState,
    pc: u32,
) -> u32 {
    let site = &code.calls[t.d as usize];
    let (recv, arg_base) = if site.this_recv {
        let Some(r) = frame.this_ref else {
            return throw(
                st,
                RtError::Native("`this` outside an object context".into()).into(),
            );
        };
        (r, u32::from(t.b))
    } else {
        match &frame.locals[t.b as usize] {
            Value::Obj(r) => (*r, u32::from(t.b) + 1),
            other => {
                return throw(
                    st,
                    RtError::Native(format!("method call on a {}", other.kind())).into(),
                )
            }
        }
    };
    let class = it.heap[recv].class;
    let hit = it
        .ic_send
        .get(site.ic as usize)
        .is_some_and(|e| e.is_some_and(|(c, _)| c == class));
    if !hit && poly_miss(it, site.ic) {
        return deopt_at(st, pc, DeoptReason::IcMegamorphic);
    }
    let mut vals = it.grab_locals(site.n_args as usize);
    for r in arg_base as usize..(arg_base + u32::from(site.n_args)) as usize {
        vals.push(take!(frame, r));
    }
    let mut gmodes = Vec::with_capacity(site.mode_args.len());
    for m in &site.mode_args {
        gmodes.push(tt!(st, it.resolve_mode(frame, m)));
    }
    let v = tt!(
        st,
        it.invoke(recv, site.method, vals, &gmodes, frame.mode, Some(site.ic))
    );
    frame.locals[t.a as usize] = v;
    pc + 1
}

struct CallMB;
impl OpBody for CallMB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        call_site(it, frame, code, t, st, pc)
    }
}

/// A send statically matching the VM's tail self-send shape. The runtime
/// half of the elision guard mirrors the VM's exactly (the static half —
/// `this` receiver, no mode arguments, gasless consuming `Ret` — was
/// proven at compile time, and the enforcement guard at body entry
/// proved the strategy is guarded); on failure the send takes the
/// generic path.
struct TailCallB;
impl OpBody for TailCallB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        'tail: {
            if it.profiler.as_ref().is_some_and(AnyProfiler::is_exact) || !st.tries.is_empty() {
                break 'tail;
            }
            let site = &code.calls[t.d as usize];
            let Some(recv) = frame.this_ref else {
                break 'tail;
            };
            let Some(Some((cached_class, entry))) = it.ic_send.get(site.ic as usize) else {
                break 'tail;
            };
            let (cached_class, entry) = (*cached_class, *entry);
            let m = &entry.method;
            if cached_class != it.heap[recv].class
                || m.attributor.is_some()
                || m.mode_override.is_some()
                || !m.mode_params.is_empty()
                || u32::from(site.n_args) != m.n_params
                || !m.body_code.code().is_some_and(|c| std::ptr::eq(c, code))
            {
                break 'tail;
            }
            let dfall_clean = match it.heap[recv].mode {
                RtTag::Dynamic => true,
                RtTag::Ground(g) => g == frame.mode && it.prog.le(g, frame.mode),
            };
            if !dfall_clean {
                break 'tail;
            }
            it.depth += 1;
            if it.depth > it.max_depth {
                return throw(st, RtError::StackOverflow.into());
            }
            let base = t.b as usize;
            for k in 0..site.n_args as usize {
                frame.locals[k] = take!(frame, base + k);
            }
            frame.unbound_lo = u32::MAX;
            return 0;
        }
        call_site(it, frame, code, t, st, pc)
    }
}

/// The builtin-call body shared by [`op_call_b`] and
/// [`op_call_b_sensor`]: argument marshaling into a pooled register
/// file (the VM allocates a fresh vector per call; the threaded tier
/// recycles through [`Interp::grab_locals`], which the values' strict
/// take-force-call order makes unobservable), the `force_last`
/// coercion, and the slice-based builtin dispatch.
macro_rules! do_call_b {
    ($it:ident, $frame:ident, $site:ident, $t:ident, $st:ident) => {{
        let mut vals = $it.grab_locals($site.n_args as usize);
        let base = $t.b as usize;
        for r in base..base + $site.n_args as usize {
            vals.push(take!($frame, r));
        }
        if $site.force_last {
            let last = vals.pop().expect("force_last implies an argument");
            match $it.force($frame, last) {
                Ok(v) => vals.push(v),
                Err(f) => {
                    $it.recycle_locals(vals);
                    return throw($st, f);
                }
            }
        }
        let out = $it.builtin_slice($site.op, &$site.ns, &$site.name, &mut vals);
        $it.recycle_locals(vals);
        match out {
            Ok(v) => v,
            Err(f) => return throw($st, f),
        }
    }};
}

struct CallBB;
impl OpBody for CallBB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let site = &code.builtins[t.d as usize];
        let v = do_call_b!(it, frame, site, t, st);
        frame.locals[t.a as usize] = v;
        pc + 1
    }
}

/// A sensor-reading builtin (`Ext.battery` / `Ext.temperature`): the
/// fault-epoch guard. The read itself completed — identically to the VM,
/// including the degradation ladder — but a faulted serve bumps the
/// injector epoch, so the rest of the body defers to the VM.
struct CallBSensorB;
impl OpBody for CallBSensorB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let site = &code.builtins[t.d as usize];
        let faults_before = it.stats.sensor_faults;
        let v = do_call_b!(it, frame, site, t, st);
        frame.locals[t.a as usize] = v;
        if it.faults_on && it.stats.sensor_faults != faults_before {
            return deopt_at(st, pc + 1, DeoptReason::FaultEpoch);
        }
        pc + 1
    }
}

struct CastB;
impl OpBody for CastB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let v = take!(frame, t.b);
        tt!(st, it.check_cast(&v, &code.casts[t.d as usize]));
        frame.locals[t.a as usize] = v;
        pc + 1
    }
}

struct SnapB;
impl OpBody for SnapB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        // Mode-window guard: a rolled decision window means the snapshot's
        // window-keyed caches and fault interactions are stale territory;
        // deopt before deciding (no state was touched, the VM replays the
        // whole snapshot).
        if it.faults_on && it.decision_window() != st.entry_window {
            return deopt_at(st, pc, DeoptReason::ModeWindow);
        }
        let site = code.snaps[t.d as usize];
        let v = take!(frame, t.b);
        let Value::Obj(r) = v else {
            return throw(
                st,
                RtError::Native(format!("snapshot of a {}", v.kind())).into(),
            );
        };
        let v = tt!(st, it.snapshot(frame, r, &site.lo, &site.hi, Some(site.ic)));
        frame.locals[t.a as usize] = v;
        pc + 1
    }
}

struct MakeMCaseB;
impl OpBody for MakeMCaseB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let site = &code.mcases[t.d as usize];
        let base = t.b as usize;
        let arms: Vec<(ent_modes::ModeName, Value)> = site
            .modes
            .iter()
            .enumerate()
            .map(|(k, m)| (m.clone(), take!(frame, base + k)))
            .collect();
        frame.locals[t.a as usize] = Value::MCase(Arc::new(arms));
        pc + 1
    }
}

struct ElimB;
impl OpBody for ElimB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        // Mode-window guard, as in `op_snap`.
        if it.faults_on && it.decision_window() != st.entry_window {
            return deopt_at(st, pc, DeoptReason::ModeWindow);
        }
        let site = code.elims[t.d as usize];
        let v = take!(frame, t.b);
        let Value::MCase(arms) = v else {
            return throw(
                st,
                RtError::Native(format!("`<|` on a {}", v.kind())).into(),
            );
        };
        let target = match site.mode {
            Some(m) => tt!(st, it.resolve_mode(frame, &m)),
            None => frame.mode,
        };
        let window = it.decision_window();
        let s = site.ic as usize;
        if it.ic_arm.len() <= s {
            it.ic_arm.resize(s + 1, None);
        }
        let hit = match &it.ic_arm[s] {
            Some(c) if Arc::ptr_eq(&c.arms, &arms) && c.target == target && c.window == window => {
                Some(c.idx)
            }
            _ => None,
        };
        let out = match hit {
            Some(idx) => arms[idx as usize].1.clone(),
            None => {
                let (idx, out) = tt!(st, it.eliminate_idx(&arms, target));
                it.ic_arm[s] = Some(ArmIc {
                    arms: Arc::clone(&arms),
                    target,
                    window,
                    idx,
                });
                out
            }
        };
        frame.locals[t.a as usize] = out;
        pc + 1
    }
}

struct BinB<const P: u8>;
impl<const P: u8> OpBody for BinB<P> {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let l = tt!(st, fetch_sc::<K_REG>(frame, code, t.b, 0, &t.k));
        let r = tt!(st, fetch_sc::<K_REG>(frame, code, t.c, 0, &t.k));
        let r = forced_sc!(it, frame, st, r);
        let v = match bin_sc::<P>(&l, &r) {
            Some(v) => v,
            None => {
                let (l, r) = (l.into_value(), r.into_value());
                match binop_fast(t.bin, &l, &r) {
                    Some(v) => v,
                    None => tt!(st, it.apply_binop(t.bin, &l, &r)),
                }
            }
        };
        frame.locals[t.a as usize] = v;
        pc + 1
    }
}

struct BinFB<const L: u8, const R: u8, const P: u8>;
impl<const L: u8, const R: u8, const P: u8> OpBody for BinFB<L, R, P> {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let l = tt!(st, fetch_sc::<L>(frame, code, t.b, t.n1, &t.k));
        let l = forced_sc!(it, frame, st, l);
        if t.rgas != 0 {
            tt!(st, it.gas_n(u64::from(t.rgas)));
        }
        let r = tt!(st, fetch_sc::<R>(frame, code, t.c, t.n2, &t.k2));
        let r = forced_sc!(it, frame, st, r);
        let v = match bin_sc::<P>(&l, &r) {
            Some(v) => v,
            None => {
                let (l, r) = (l.into_value(), r.into_value());
                match binop_fast(t.bin, &l, &r) {
                    Some(v) => v,
                    None => tt!(st, it.apply_binop(t.bin, &l, &r)),
                }
            }
        };
        frame.locals[t.a as usize] = v;
        pc + 1
    }
}

struct JmpBinB<const P: u8>;
impl<const P: u8> OpBody for JmpBinB<P> {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let l = tt!(st, fetch_sc::<K_REG>(frame, code, t.a, 0, &t.k));
        let r = tt!(st, fetch_sc::<K_REG>(frame, code, t.b, 0, &t.k));
        let r = forced_sc!(it, frame, st, r);
        if let Some(b) = cmp_sc::<P>(&l, &r) {
            return if b { pc + 1 } else { t.d };
        }
        let (l, r) = (l.into_value(), r.into_value());
        let v = match binop_fast(t.bin, &l, &r) {
            Some(v) => v,
            None => tt!(st, it.apply_binop(t.bin, &l, &r)),
        };
        match v {
            Value::Bool(true) => pc + 1,
            Value::Bool(false) => t.d,
            other => throw(
                st,
                RtError::Native(format!("if condition is a {}", other.kind())).into(),
            ),
        }
    }
}

struct JmpBinFB<const L: u8, const R: u8, const P: u8>;
impl<const L: u8, const R: u8, const P: u8> OpBody for JmpBinFB<L, R, P> {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let l = tt!(st, fetch_sc::<L>(frame, code, t.b, t.n1, &t.k));
        let l = forced_sc!(it, frame, st, l);
        if t.rgas != 0 {
            tt!(st, it.gas_n(u64::from(t.rgas)));
        }
        let r = tt!(st, fetch_sc::<R>(frame, code, t.c, t.n2, &t.k2));
        let r = forced_sc!(it, frame, st, r);
        if let Some(b) = cmp_sc::<P>(&l, &r) {
            return if b { pc + 1 } else { t.d };
        }
        let (l, r) = (l.into_value(), r.into_value());
        let v = match binop_fast(t.bin, &l, &r) {
            Some(v) => v,
            None => tt!(st, it.apply_binop(t.bin, &l, &r)),
        };
        match v {
            Value::Bool(true) => pc + 1,
            Value::Bool(false) => t.d,
            other => throw(
                st,
                RtError::Native(format!("if condition is a {}", other.kind())).into(),
            ),
        }
    }
}

struct UnB;
impl OpBody for UnB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let v = take!(frame, t.b);
        let v = forced!(it, frame, st, v);
        let op = if t.c == 0 { UnOp::Not } else { UnOp::Neg };
        let out = tt!(st, Interp::apply_unop(op, v));
        frame.locals[t.a as usize] = out;
        pc + 1
    }
}

struct JmpB;
impl OpBody for JmpB {
    fn run<'p>(
        it: &mut Interp<'p>,
        _frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        t.d
    }
}

struct JmpIfFalseB;
impl OpBody for JmpIfFalseB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let v = take!(frame, t.b);
        let v = forced!(it, frame, st, v);
        let Value::Bool(b) = v else {
            return throw(
                st,
                RtError::Native(format!("if condition is a {}", v.kind())).into(),
            );
        };
        if b {
            pc + 1
        } else {
            t.d
        }
    }
}

struct ScJumpB;
impl OpBody for ScJumpB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let op = t.bin;
        let v = take!(frame, t.b);
        let v = forced!(it, frame, st, v);
        let Value::Bool(b) = v else {
            return throw(
                st,
                RtError::Native(format!("`{op}` on a {}", v.kind())).into(),
            );
        };
        frame.locals[t.b as usize] = Value::Bool(b);
        let short = match op {
            ent_syntax::BinOp::And => !b,
            _ => b,
        };
        if short {
            t.d
        } else {
            pc + 1
        }
    }
}

struct ScForceB;
impl OpBody for ScForceB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let op = t.bin;
        let v = take!(frame, t.b);
        let v = forced!(it, frame, st, v);
        let Value::Bool(b) = v else {
            return throw(
                st,
                RtError::Native(format!("`{op}` on a {}", v.kind())).into(),
            );
        };
        frame.locals[t.b as usize] = Value::Bool(b);
        pc + 1
    }
}

struct ForceB;
impl OpBody for ForceB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        // Forcing anything but a mode case is the identity: skip the take
        // and write-back entirely (the common case by far).
        if matches!(frame.locals[t.b as usize], Value::MCase(_)) {
            let v = take!(frame, t.b);
            let v = tt!(st, it.force(frame, v));
            frame.locals[t.b as usize] = v;
        }
        pc + 1
    }
}

struct ArrLitB;
impl OpBody for ArrLitB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        let vals = take_n!(frame, t.b, t.c);
        frame.locals[t.a as usize] = Value::Array(Arc::new(vals));
        pc + 1
    }
}

struct RetB;
impl OpBody for RetB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        st.out = take!(frame, t.b);
        R_RET
    }
}

struct HaltB;
impl OpBody for HaltB {
    fn run<'p>(
        it: &mut Interp<'p>,
        frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        st.out = take!(frame, t.b);
        R_DONE
    }
}

struct TryPushB;
impl OpBody for TryPushB {
    fn run<'p>(
        it: &mut Interp<'p>,
        _frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        st.tries.push(t.d);
        pc + 1
    }
}

struct TryPopB;
impl OpBody for TryPopB {
    fn run<'p>(
        it: &mut Interp<'p>,
        _frame: &mut Frame,
        _code: &'p Code,
        ops: &[TOp],
        st: &mut TState,
        pc: u32,
    ) -> u32 {
        let t = &ops[pc as usize];
        charge!(it, t, st);
        st.tries.pop();
        pc + 1
    }
}
