//! The ENT interpreter: the paper's operational semantics (§4.2) extended
//! with the practical expression forms, executing against the simulated
//! energy platform.
//!
//! The ENT-specific runtime machinery:
//!
//! * **Mode tagging** — every object carries a mode tag; dynamic objects
//!   are untagged (`?`) until snapshotted.
//! * **Snapshot** — evaluates the object's attributor, performs the `check`
//!   against the declared bounds (throwing the catchable
//!   [`RtError::EnergyException`] on a *bad check*), and produces a
//!   statically-moded copy. Copying is lazy, as in the paper's compiler: the
//!   first snapshot tags the object in place; only subsequent snapshots
//!   physically (shallowly) copy.
//! * **dfall** — the dynamic waterfall invariant is re-checked at every
//!   message send; for well-typed programs it never fires (Corollary 1),
//!   which the soundness tests verify.

use std::collections::HashMap;
use std::sync::Arc;

use ent_core::CompiledProgram;
use ent_energy::{EnergySim, Measurement, Platform, WorkKind};
use ent_modes::{Mode, ModeName, ModeTable, ModeVar, StaticMode};
use ent_syntax::{
    BinOp, ClassName, ClassTable, Expr, ExprKind, Ident, Lit, MethodDecl, Program, Stmt, UnOp,
};

use crate::error::{Flow, RtError};
use crate::value::{ObjRef, RtMode, Value};

/// Configuration for a single program run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Suppress ENT's runtime errors (failed checks proceed as if they had
    /// passed). This is the paper's "silent" configuration for the E1
    /// experiments: tagging stays in place, exceptions are never thrown.
    pub silent: bool,
    /// Model the runtime cost of mode tagging and snapshot copying as
    /// simulator work (disable for the no-op baseline of Figure 6).
    pub tagging: bool,
    /// Initial battery level fraction.
    pub battery_level: f64,
    /// Gas limit: abstract evaluation steps before [`RtError::OutOfGas`].
    pub gas_limit: u64,
    /// Seed for the simulator's noise and `Sim.rand`.
    pub seed: u64,
    /// Sample a `(time, temperature)` trace at this interval, in seconds.
    pub trace_interval_s: Option<f64>,
    /// Ablation: copy on *every* snapshot instead of the paper's lazy
    /// strategy (first snapshot tags in place).
    pub eager_copy: bool,
    /// Ablation: deep-copy the object graph on snapshot instead of the
    /// paper's shallow copy (§6.3 discusses this design choice).
    pub deep_copy: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            silent: false,
            tagging: true,
            battery_level: 1.0,
            gas_limit: 200_000_000,
            seed: 0,
            trace_interval_s: None,
            eager_copy: false,
            deep_copy: false,
        }
    }
}

/// A structured runtime event, timestamped on the virtual clock — the
/// raw material of the paper's §6.3 energy-debugging workflow (which
/// object was assigned which mode, when, and which checks failed).
#[derive(Clone, Debug, PartialEq)]
pub enum EnergyEvent {
    /// An object of a dynamic class was allocated (untagged).
    DynamicAlloc {
        /// Virtual time in seconds.
        at_s: f64,
        /// The class.
        class: String,
    },
    /// A snapshot assigned a mode.
    Snapshot {
        /// Virtual time in seconds.
        at_s: f64,
        /// The class.
        class: String,
        /// The mode the attributor produced.
        mode: String,
        /// The declared bounds.
        bounds: (String, String),
        /// Whether a physical copy was made (lazy copying).
        copied: bool,
        /// Whether the check failed (an EnergyException was or would have
        /// been raised).
        failed: bool,
    },
    /// A dynamic waterfall check failed at a message send (method-level
    /// attributors; impossible for statically-checked sends).
    DfallFailure {
        /// Virtual time in seconds.
        at_s: f64,
        /// `Class.method` of the receiver.
        target: String,
        /// The receiver-side mode.
        receiver_mode: String,
        /// The sender's mode.
        sender_mode: String,
    },
}

/// Statistics gathered during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Abstract evaluation steps executed.
    pub steps: u64,
    /// Snapshot expressions evaluated.
    pub snapshots: u64,
    /// Physical object copies made by snapshots (lazy copying makes this
    /// less than or equal to `snapshots`).
    pub copies: u64,
    /// `EnergyException`s raised (including caught ones).
    pub energy_exceptions: u64,
    /// Objects allocated with a dynamic mode (the tagged portion of the
    /// heap).
    pub dynamic_allocs: u64,
    /// Total objects allocated.
    pub allocs: u64,
}

/// The result of running an ENT program.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The value `main` returned, or the error that stopped the program.
    pub value: Result<Value, RtError>,
    /// A deep, heap-resolved rendering of the result value (objects print
    /// as `Class@mode{field=…}`), for display and for differential tests
    /// against the formal machine. `None` when the run failed.
    pub value_pretty: Option<String>,
    /// The simulator's final measurement (energy, time, peak temperature).
    pub measurement: Measurement,
    /// Lines produced by `IO.print`.
    pub output: Vec<String>,
    /// Runtime statistics.
    pub stats: RunStats,
    /// The sampled temperature trace, if tracing was enabled.
    pub trace: Vec<(f64, f64)>,
    /// Structured energy events, in order (§6.3 debugging).
    pub events: Vec<EnergyEvent>,
}

/// Runs a compiled program's `Main.main()` on a simulated platform.
///
/// # Example
///
/// ```
/// use ent_core::compile;
/// use ent_energy::Platform;
/// use ent_runtime::{run, RuntimeConfig, Value};
///
/// let compiled = compile(
///     "class Main { int main() { return 6 * 7; } }",
/// ).unwrap();
/// let result = run(&compiled, Platform::system_a(), RuntimeConfig::default());
/// assert_eq!(result.value.unwrap(), Value::Int(42));
/// ```
pub fn run(compiled: &CompiledProgram, platform: Platform, config: RuntimeConfig) -> RunResult {
    // ENT iteration is recursion-based, and the evaluator is recursive, so
    // deep-but-legitimate programs need far more stack than a default test
    // thread provides. Run the interpreter on a dedicated big-stack thread
    // (the explicit call-depth guard below turns true runaway recursion
    // into `RtError::StackOverflow` long before this stack is exhausted).
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("ent-interp".into())
            .stack_size(512 * 1024 * 1024)
            .spawn_scoped(scope, || run_on_current_thread(compiled, platform, config))
            .expect("spawning the interpreter thread")
            .join()
            .expect("interpreter thread panicked")
    })
}

fn run_on_current_thread(
    compiled: &CompiledProgram,
    platform: Platform,
    config: RuntimeConfig,
) -> RunResult {
    let mut sim = EnergySim::new(platform, config.seed);
    sim.set_battery_level(config.battery_level);
    if let Some(interval) = config.trace_interval_s {
        sim.enable_trace(interval);
    }
    let mut interp = Interp {
        program: &compiled.program,
        table: &compiled.table,
        modes: &compiled.program.mode_table,
        heap: Vec::new(),
        sim,
        config,
        output: Vec::new(),
        stats: RunStats::default(),
        field_index: HashMap::new(),
        method_index: HashMap::new(),
        depth: 0,
        events: Vec::new(),
    };
    let value = interp.run_main();
    let value_pretty = value.as_ref().ok().map(|v| interp.render_deep(v, 0));
    let measurement = interp.sim.finish();
    let trace = interp.sim.trace().to_vec();
    RunResult {
        value,
        value_pretty,
        measurement,
        output: interp.output,
        stats: interp.stats,
        trace,
        events: interp.events,
    }
}

/// Maximum ENT call depth before [`RtError::StackOverflow`].
const MAX_CALL_DEPTH: usize = 50_000;

/// Simulator work charged per snapshot (attributor dispatch + metadata).
const SNAPSHOT_OVERHEAD_OPS: f64 = 1.2e4;
/// Simulator work charged per physical snapshot copy.
const COPY_OVERHEAD_OPS: f64 = 3.0e4;
/// Simulator work charged per dynamic (tagged) allocation.
const TAG_OVERHEAD_OPS: f64 = 2.0e3;

/// A cached method resolution: the declaring class plus its declaration.
type ResolvedMethodEntry = Option<(ClassName, Arc<MethodDecl>)>;

/// A heap object.
#[derive(Clone, Debug)]
struct ObjData {
    class: ClassName,
    mode: RtMode,
    /// Ground bindings for the class's mode parameters (the internal
    /// parameter of a dynamic object is bound at snapshot time).
    mode_env: HashMap<ModeVar, StaticMode>,
    fields: Vec<Value>,
    /// Lazy-copy metadata: whether this dynamic object has been
    /// snapshotted before (paper §5, "Implementation").
    snapshotted: bool,
}

/// A call frame.
#[derive(Clone, Debug)]
struct Frame {
    locals: Vec<(Ident, Value)>,
    this_ref: Option<ObjRef>,
    /// The current closure mode `m` of `cl(m, e)`.
    mode: StaticMode,
    /// Ground bindings for mode variables visible in the executing body.
    mode_env: HashMap<ModeVar, StaticMode>,
}

struct Interp<'a> {
    #[allow(dead_code)]
    program: &'a Program,
    table: &'a ClassTable,
    modes: &'a ModeTable,
    heap: Vec<ObjData>,
    sim: EnergySim,
    config: RuntimeConfig,
    output: Vec<String>,
    stats: RunStats,
    /// Cache: class → ordered field names (inherited first).
    field_index: HashMap<ClassName, Arc<Vec<Ident>>>,
    /// Cache: (class, method) → declaring class + declaration, so hot
    /// dispatch loops skip the chain walk.
    method_index: HashMap<(ClassName, Ident), ResolvedMethodEntry>,
    /// Current ENT call depth (for the stack guard).
    depth: usize,
    /// Structured event log.
    events: Vec<EnergyEvent>,
}

type EvalResult = Result<Value, Flow>;

impl<'a> Interp<'a> {
    fn run_main(&mut self) -> Result<Value, RtError> {
        let main_class = ClassName::new("Main");
        let Some(decl) = self.table.class(&main_class) else {
            return Err(RtError::NoMain);
        };
        let Some(_) = decl.method(&Ident::new("main")) else {
            return Err(RtError::NoMain);
        };
        // boot(P) = cl(⊤, main-body) on a fresh Main object.
        let this_ref = match self.allocate(&main_class, Vec::new(), RtMode::Ground(StaticMode::Top), HashMap::new()) {
            Ok(r) => r,
            Err(Flow::Error(e)) => return Err(e),
            Err(Flow::Return(_)) => unreachable!("allocation cannot return"),
        };
        match self.invoke(this_ref, &Ident::new("main"), Vec::new(), &[], StaticMode::Top) {
            Ok(v) => Ok(v),
            Err(Flow::Return(v)) => Ok(v),
            Err(Flow::Error(e)) => Err(e),
        }
    }

    fn gas(&mut self) -> Result<(), Flow> {
        self.stats.steps += 1;
        if self.stats.steps > self.config.gas_limit {
            Err(RtError::OutOfGas.into())
        } else {
            Ok(())
        }
    }

    /// Deep, heap-resolved rendering of a value (bounded recursion depth
    /// to stay safe on cyclic heaps).
    fn render_deep(&mut self, v: &Value, depth: usize) -> String {
        if depth > 16 {
            return "…".to_string();
        }
        match v {
            Value::Obj(r) => {
                let data = &self.heap[*r];
                let class = data.class.clone();
                let mode = data.mode.clone();
                let fields = data.fields.clone();
                let names = self.field_names(&class);
                let parts: Vec<String> = names
                    .iter()
                    .zip(&fields)
                    .map(|(n, fv)| format!("{n}={}", self.render_deep(fv, depth + 1)))
                    .collect();
                format!("{class}@{mode}{{{}}}", parts.join(","))
            }
            Value::MCase(arms) => {
                let parts: Vec<String> = arms
                    .iter()
                    .map(|(m, av)| format!("{m}:{}", self.render_deep(av, depth + 1)))
                    .collect();
                format!("mcase{{{}}}", parts.join(";"))
            }
            Value::Array(items) => {
                let parts: Vec<String> = items
                    .iter()
                    .map(|iv| self.render_deep(iv, depth + 1))
                    .collect();
                format!("[{}]", parts.join(", "))
            }
            other => other.to_string(),
        }
    }

    // ---- modes -----------------------------------------------------------

    /// Resolves a static mode expression to a ground mode using the frame's
    /// mode environment.
    fn resolve_mode(&self, frame: &Frame, m: &StaticMode) -> Result<StaticMode, Flow> {
        match m {
            StaticMode::Var(v) => match frame.mode_env.get(v) {
                Some(g) => Ok(g.clone()),
                None => Err(RtError::Native(format!("unbound mode variable `{v}`")).into()),
            },
            ground => Ok(ground.clone()),
        }
    }

    fn mode_le(&self, a: &StaticMode, b: &StaticMode) -> bool {
        self.modes.le_ground(a, b)
    }

    // ---- heap -------------------------------------------------------------

    fn field_names(&mut self, class: &ClassName) -> Arc<Vec<Ident>> {
        if let Some(names) = self.field_index.get(class) {
            return Arc::clone(names);
        }
        let mut names = Vec::new();
        for anc in self.table.superclass_chain(class) {
            if let Some(decl) = self.table.class(&anc) {
                for f in &decl.fields {
                    names.push(f.name.clone());
                }
            }
        }
        let names = Arc::new(names);
        self.field_index.insert(class.clone(), Arc::clone(&names));
        names
    }

    fn allocate(
        &mut self,
        class: &ClassName,
        ctor_vals: Vec<Value>,
        mode: RtMode,
        mode_env: HashMap<ModeVar, StaticMode>,
    ) -> Result<ObjRef, Flow> {
        self.stats.allocs += 1;
        if matches!(mode, RtMode::Dynamic) {
            self.stats.dynamic_allocs += 1;
            if self.config.tagging {
                self.sim.do_work(WorkKind::Cpu, TAG_OVERHEAD_OPS);
            }
            self.events.push(EnergyEvent::DynamicAlloc {
                at_s: self.sim.time_s(),
                class: class.to_string(),
            });
        }
        let names = self.field_names(class);
        let obj_ref = self.heap.len();
        self.heap.push(ObjData {
            class: class.clone(),
            mode,
            mode_env,
            fields: vec![Value::Unit; names.len()],
            snapshotted: false,
        });

        // Positional constructor values fill uninitialized fields in
        // declaration order; initializer fields are evaluated afterwards,
        // each in its owning class's context.
        let mut ctor_iter = ctor_vals.into_iter();
        let chain = self.table.superclass_chain(class);
        let mut index = 0usize;
        // First pass: positional fields.
        let mut init_jobs: Vec<(usize, ClassName, Expr)> = Vec::new();
        for anc in &chain {
            let decl = self.table.class(anc).expect("validated chain");
            for f in &decl.fields {
                if let Some(init) = &f.init {
                    init_jobs.push((index, anc.clone(), init.clone()));
                } else {
                    let v = ctor_iter.next().ok_or_else(|| {
                        Flow::Error(RtError::Native(format!(
                            "missing constructor argument for field `{}` of `{class}`",
                            f.name
                        )))
                    })?;
                    self.heap[obj_ref].fields[index] = v;
                }
                index += 1;
            }
        }
        // Second pass: initializers, with `this` bound and the owner's
        // mode environment.
        for (index, owner, init) in init_jobs {
            let mode_env = self.owner_mode_env(obj_ref, &owner)?;
            let mode = match &self.heap[obj_ref].mode {
                RtMode::Ground(m) => m.clone(),
                RtMode::Dynamic => StaticMode::Top,
            };
            let mut frame = Frame {
                locals: Vec::new(),
                this_ref: Some(obj_ref),
                mode,
                mode_env,
            };
            let v = self.eval(&mut frame, &init)?;
            self.heap[obj_ref].fields[index] = v;
        }
        Ok(obj_ref)
    }

    /// Computes the ground mode environment for an ancestor `owner` of the
    /// object's class, by threading superclass instantiations.
    fn owner_mode_env(
        &self,
        obj: ObjRef,
        owner: &ClassName,
    ) -> Result<HashMap<ModeVar, StaticMode>, Flow> {
        let data = &self.heap[obj];
        let mut cur = data.class.clone();
        let mut env = data.mode_env.clone();
        while &cur != owner {
            let decl = self
                .table
                .class(&cur)
                .ok_or_else(|| Flow::Error(RtError::Native(format!("unknown class `{cur}`"))))?;
            let sup = decl.superclass.clone();
            let sup_decl = self
                .table
                .class(&sup)
                .ok_or_else(|| Flow::Error(RtError::Native(format!("unknown class `{sup}`"))))?;
            let sup_params = sup_decl.mode_params.params();
            let args: Vec<StaticMode> = if decl.super_args.is_empty() {
                sup_decl.mode_params.bounds.iter().map(|b| b.lo.clone()).collect()
            } else {
                decl.super_args
                    .iter()
                    .map(|m| match m {
                        StaticMode::Var(v) => env
                            .get(v)
                            .cloned()
                            .unwrap_or_else(|| StaticMode::Var(v.clone())),
                        g => g.clone(),
                    })
                    .collect()
            };
            env = sup_params.into_iter().zip(args).collect();
            cur = sup;
        }
        Ok(env)
    }

    // ---- invocation --------------------------------------------------------

    fn find_method(&mut self, class: &ClassName, name: &Ident) -> ResolvedMethodEntry {
        let key = (class.clone(), name.clone());
        if let Some(cached) = self.method_index.get(&key) {
            return cached.clone();
        }
        let mut cur = class.clone();
        let resolved = loop {
            let Some(decl) = self.table.class(&cur) else { break None };
            if let Some(m) = decl.method(name) {
                break Some((cur.clone(), Arc::new(m.clone())));
            }
            if decl.superclass == ClassName::object() {
                break None;
            }
            cur = decl.superclass.clone();
        };
        self.method_index.insert(key, resolved.clone());
        resolved
    }

    /// Invokes `recv.method(args)` from a sender executing at
    /// `sender_mode`, enforcing the dynamic waterfall invariant.
    fn invoke(
        &mut self,
        recv: ObjRef,
        method: &Ident,
        args: Vec<Value>,
        mode_args: &[StaticMode],
        sender_mode: StaticMode,
    ) -> EvalResult {
        self.depth += 1;
        if self.depth > MAX_CALL_DEPTH {
            self.depth -= 1;
            return Err(RtError::StackOverflow.into());
        }
        let result = self.invoke_inner(recv, method, args, mode_args, sender_mode);
        self.depth -= 1;
        result
    }

    fn invoke_inner(
        &mut self,
        recv: ObjRef,
        method: &Ident,
        args: Vec<Value>,
        mode_args: &[StaticMode],
        sender_mode: StaticMode,
    ) -> EvalResult {
        let class = self.heap[recv].class.clone();
        let Some((owner, decl)) = self.find_method(&class, method) else {
            return Err(RtError::Native(format!("class `{class}` has no method `{method}`")).into());
        };
        let mut mode_env = self.owner_mode_env(recv, &owner)?;

        // Bind explicit generic method-mode arguments (inferred ones were
        // already resolved statically into the same ground modes, so the
        // runtime only needs explicit bindings; inferred generic modes are
        // recovered from the receiver's environment by variable lookup).
        for (bound, arg) in decl.mode_params.iter().zip(mode_args) {
            mode_env.insert(bound.var.clone(), arg.clone());
        }

        // Receiver-side mode for dfall: the object's tag, overridden by a
        // method-level mode or attributor.
        let receiver_mode = match (&decl.attributor, &decl.mode) {
            (Some(attributor), _) => {
                // Method-level attributor: evaluate it now to characterize
                // this invocation.
                let mut aframe = Frame {
                    locals: decl
                        .params
                        .iter()
                        .map(|(_, n)| n.clone())
                        .zip(args.iter().cloned())
                        .collect(),
                    this_ref: Some(recv),
                    mode: sender_mode.clone(),
                    mode_env: mode_env.clone(),
                };
                let m = self.eval_attributor_body(&mut aframe, &attributor.body)?;
                let produced = StaticMode::Const(m);
                // The method's internal view (its first declared mode
                // parameter, if any) is bound to the attributed mode.
                if let Some(bound) = decl.mode_params.first() {
                    mode_env.insert(bound.var.clone(), produced.clone());
                }
                Some(produced)
            }
            (None, Some(m)) => {
                // Method-level static override, resolved in the owner's env.
                let resolved = match m {
                    StaticMode::Var(v) => mode_env.get(v).cloned().unwrap_or_else(|| m.clone()),
                    g => g.clone(),
                };
                Some(resolved)
            }
            (None, None) => self.heap[recv].mode.ground().cloned(),
        };

        // dfall(o, m): the receiver mode must be ≤ the sender (closure)
        // mode. Untagged dynamic receivers are only reachable via `this`,
        // which keeps the sender's mode.
        let frame_mode = match receiver_mode {
            Some(m) => {
                if !self.mode_le(&m, &sender_mode) {
                    self.stats.energy_exceptions += 1;
                    self.events.push(EnergyEvent::DfallFailure {
                        at_s: self.sim.time_s(),
                        target: format!("{class}.{method}"),
                        receiver_mode: m.to_string(),
                        sender_mode: sender_mode.to_string(),
                    });
                    if !self.config.silent {
                        return Err(RtError::EnergyException(format!(
                            "dynamic waterfall violation: `{class}.{method}` runs at mode `{m}` but the caller is at `{sender_mode}`"
                        ))
                        .into());
                    }
                }
                m
            }
            None => sender_mode,
        };

        let mut frame = Frame {
            locals: decl
                .params
                .iter()
                .map(|(_, n)| n.clone())
                .zip(args)
                .collect(),
            this_ref: Some(recv),
            mode: frame_mode,
            mode_env,
        };
        match self.eval(&mut frame, &decl.body) {
            Ok(v) => Ok(v),
            Err(Flow::Return(v)) => Ok(v),
            Err(e) => Err(e),
        }
    }

    /// Evaluates an attributor body to a mode constant.
    fn eval_attributor_body(&mut self, frame: &mut Frame, body: &Expr) -> Result<ModeName, Flow> {
        let v = match self.eval(frame, body) {
            Ok(v) => v,
            Err(Flow::Return(v)) => v,
            Err(e) => return Err(e),
        };
        match v {
            Value::Mode(m) => Ok(m),
            other => Err(RtError::Native(format!(
                "attributor returned a {} instead of a mode",
                other.kind()
            ))
            .into()),
        }
    }

    // ---- snapshot ------------------------------------------------------------

    /// The paper's snapshot/check reduction: evaluate the attributor, check
    /// the bounds, produce a statically-moded (lazily copied) object.
    fn snapshot(
        &mut self,
        frame: &Frame,
        obj: ObjRef,
        lo: &StaticMode,
        hi: &StaticMode,
    ) -> EvalResult {
        self.stats.snapshots += 1;
        if self.config.tagging {
            self.sim.do_work(WorkKind::Cpu, SNAPSHOT_OVERHEAD_OPS);
        }
        let class = self.heap[obj].class.clone();
        let Some(decl) = self.table.class(&class) else {
            return Err(RtError::Native(format!("unknown class `{class}`")).into());
        };
        let Some(attributor) = &decl.attributor else {
            return Err(RtError::Native(format!(
                "class `{class}` has no attributor; only dynamic objects can be snapshotted"
            ))
            .into());
        };
        let mode_env = self.heap[obj].mode_env.clone();
        let mut aframe = Frame {
            locals: Vec::new(),
            this_ref: Some(obj),
            mode: frame.mode.clone(),
            mode_env,
        };
        let body = attributor.body.clone();
        let mode = self.eval_attributor_body(&mut aframe, &body)?;
        let mode = StaticMode::Const(mode);

        // check(m, m1, m2, o): bad check throws the catchable
        // EnergyException unless running silent.
        let lo = self.resolve_mode(frame, lo)?;
        let hi = self.resolve_mode(frame, hi)?;
        let failed = !(self.mode_le(&lo, &mode) && self.mode_le(&mode, &hi));
        let will_copy = self.heap[obj].snapshotted || self.config.eager_copy;
        self.events.push(EnergyEvent::Snapshot {
            at_s: self.sim.time_s(),
            class: class.to_string(),
            mode: mode.to_string(),
            bounds: (lo.to_string(), hi.to_string()),
            copied: !failed && will_copy,
            failed,
        });
        if failed {
            self.stats.energy_exceptions += 1;
            if !self.config.silent {
                return Err(RtError::EnergyException(format!(
                    "snapshot of `{class}` produced mode `{mode}` outside bounds [{lo}, {hi}]"
                ))
                .into());
            }
        }

        // Bind the class's internal mode parameter to the produced mode.
        let internal = decl.mode_params.bounds.first().map(|b| b.var.clone());

        if !self.heap[obj].snapshotted && !self.config.eager_copy {
            // Lazy copy: tag in place on first snapshot.
            let data = &mut self.heap[obj];
            data.snapshotted = true;
            data.mode = RtMode::Ground(mode.clone());
            if let Some(v) = internal {
                data.mode_env.insert(v, mode);
            }
            Ok(Value::Obj(obj))
        } else {
            // Subsequent snapshots copy (shallow by default; the deep-copy
            // ablation clones the reachable object graph).
            self.stats.copies += 1;
            if self.config.tagging {
                self.sim.do_work(WorkKind::Cpu, COPY_OVERHEAD_OPS);
            }
            self.heap[obj].snapshotted = true;
            let copy = if self.config.deep_copy {
                self.deep_copy_obj(obj, &mut HashMap::new())
            } else {
                let data = self.heap[obj].clone();
                let copy = self.heap.len();
                self.heap.push(data);
                copy
            };
            let data = &mut self.heap[copy];
            data.mode = RtMode::Ground(mode.clone());
            if let Some(v) = internal {
                data.mode_env.insert(v, mode);
            }
            data.snapshotted = true;
            Ok(Value::Obj(copy))
        }
    }

    /// The deep-copy ablation: clones the object graph reachable from
    /// `obj`, preserving sharing and cycles via the `seen` map. Each
    /// cloned object is charged the copy overhead.
    fn deep_copy_obj(&mut self, obj: ObjRef, seen: &mut HashMap<ObjRef, ObjRef>) -> ObjRef {
        if let Some(&copy) = seen.get(&obj) {
            return copy;
        }
        let copy = self.heap.len();
        seen.insert(obj, copy);
        let data = self.heap[obj].clone();
        self.heap.push(data);
        let field_count = self.heap[copy].fields.len();
        for i in 0..field_count {
            let field = self.heap[copy].fields[i].clone();
            if let Value::Obj(r) = field {
                if self.config.tagging {
                    self.sim.do_work(WorkKind::Cpu, COPY_OVERHEAD_OPS);
                }
                let cloned = self.deep_copy_obj(r, seen);
                self.heap[copy].fields[i] = Value::Obj(cloned);
            }
        }
        copy
    }

    // ---- mode cases -------------------------------------------------------------

    /// Eliminates a mode case at a target mode: the arm whose mode is the
    /// largest at or below the target.
    fn eliminate(&self, arms: &[(ModeName, Value)], target: &StaticMode) -> Result<Value, Flow> {
        let mut best: Option<(&ModeName, &Value)> = None;
        for (m, v) in arms {
            let am = StaticMode::Const(m.clone());
            if self.mode_le(&am, target) {
                let better = match best {
                    None => true,
                    Some((bm, _)) => {
                        self.mode_le(&StaticMode::Const(bm.clone()), &am)
                    }
                };
                if better {
                    best = Some((m, v));
                }
            }
        }
        match best {
            Some((_, v)) => Ok(v.clone()),
            None => Err(RtError::NoSuchArm(format!(
                "no mode case arm at or below `{target}`"
            ))
            .into()),
        }
    }

    /// Auto-eliminates a value if it is a mode case flowing into a
    /// primitive position (the implicit projection of the paper's concrete
    /// syntax).
    fn force(&self, frame: &Frame, v: Value) -> Result<Value, Flow> {
        match v {
            Value::MCase(arms) => self.eliminate(&arms, &frame.mode),
            other => Ok(other),
        }
    }

    // ---- evaluation ---------------------------------------------------------------

    fn eval(&mut self, frame: &mut Frame, e: &Expr) -> EvalResult {
        self.gas()?;
        match &e.kind {
            ExprKind::Lit(l) => Ok(match l {
                Lit::Int(n) => Value::Int(*n),
                Lit::Double(x) => Value::Double(*x),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Str(s) => Value::str(s),
                Lit::Unit => Value::Unit,
            }),
            ExprKind::ModeConst(m) => Ok(Value::Mode(m.clone())),
            ExprKind::This => match frame.this_ref {
                Some(r) => Ok(Value::Obj(r)),
                None => Err(RtError::Native("`this` outside an object context".into()).into()),
            },
            ExprKind::Var(x) => frame
                .locals
                .iter()
                .rev()
                .find(|(n, _)| n == x)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| RtError::Native(format!("unbound variable `{x}`")).into()),
            ExprKind::Field { recv, name } => {
                let rv = self.eval(frame, recv)?;
                let Value::Obj(r) = rv else {
                    return Err(RtError::Native(format!(
                        "field access on a {}",
                        rv.kind()
                    ))
                    .into());
                };
                let class = self.heap[r].class.clone();
                let names = self.field_names(&class);
                match names.iter().position(|n| n == name) {
                    Some(i) => Ok(self.heap[r].fields[i].clone()),
                    None => Err(RtError::Native(format!(
                        "class `{class}` has no field `{name}`"
                    ))
                    .into()),
                }
            }
            ExprKind::New { class, args, ctor_args } => {
                let mut vals = Vec::with_capacity(ctor_args.len());
                for a in ctor_args {
                    vals.push(self.eval(frame, a)?);
                }
                let decl = self
                    .table
                    .class(class)
                    .ok_or_else(|| Flow::Error(RtError::Native(format!("unknown class `{class}`"))))?;
                let params = decl.mode_params.params();
                let (mode, mode_env) = match args {
                    Some(margs) if margs.is_dynamic() => {
                        let mut env = HashMap::new();
                        for (var, m) in params.iter().skip(1).zip(&margs.rest) {
                            env.insert(var.clone(), self.resolve_mode(frame, m)?);
                        }
                        (RtMode::Dynamic, env)
                    }
                    Some(margs) => {
                        let mut env = HashMap::new();
                        let mut flat = Vec::new();
                        if let Mode::Static(m) = &margs.mode {
                            flat.push(self.resolve_mode(frame, m)?);
                        }
                        flat.extend(
                            margs
                                .rest
                                .iter()
                                .map(|m| self.resolve_mode(frame, m))
                                .collect::<Result<Vec<_>, _>>()?,
                        );
                        for (var, m) in params.iter().zip(flat.iter()) {
                            env.insert(var.clone(), m.clone());
                        }
                        let mode = flat
                            .first()
                            .cloned()
                            .unwrap_or(StaticMode::Bot);
                        (RtMode::Ground(mode), env)
                    }
                    None => {
                        if decl.mode_params.dynamic {
                            (RtMode::Dynamic, HashMap::new())
                        } else if decl.mode_params.bounds.is_empty() {
                            (RtMode::Ground(StaticMode::Bot), HashMap::new())
                        } else {
                            // Pinned-mode default instantiation.
                            let mut env = HashMap::new();
                            for b in &decl.mode_params.bounds {
                                env.insert(b.var.clone(), b.lo.clone());
                            }
                            (RtMode::Ground(decl.mode_params.bounds[0].lo.clone()), env)
                        }
                    }
                };
                let r = self.allocate(class, vals, mode, mode_env)?;
                Ok(Value::Obj(r))
            }
            ExprKind::Call { recv, method, mode_args, args } => {
                let rv = self.eval(frame, recv)?;
                let Value::Obj(r) = rv else {
                    return Err(RtError::Native(format!(
                        "method call on a {}",
                        rv.kind()
                    ))
                    .into());
                };
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(frame, a)?);
                }
                let resolved_mode_args = mode_args
                    .iter()
                    .map(|m| self.resolve_mode(frame, m))
                    .collect::<Result<Vec<_>, _>>()?;
                self.invoke(r, method, vals, &resolved_mode_args, frame.mode.clone())
            }
            ExprKind::Builtin { ns, name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let v = self.eval(frame, a)?;
                    vals.push(self.force(frame, v)?);
                }
                self.builtin(ns.as_str(), name.as_str(), vals)
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.eval(frame, expr)?;
                // Only object downcasts can fail at run time.
                if let (Value::Obj(r), ent_syntax::Type::Object { class, .. }) = (&v, ty) {
                    let actual = &self.heap[*r].class;
                    if !self.table.is_subclass(actual, class) {
                        return Err(RtError::BadCast(format!(
                            "object of class `{actual}` is not a `{class}`"
                        ))
                        .into());
                    }
                }
                Ok(v)
            }
            ExprKind::Snapshot { expr, lo, hi } => {
                let v = self.eval(frame, expr)?;
                let Value::Obj(r) = v else {
                    return Err(RtError::Native(format!(
                        "snapshot of a {}",
                        v.kind()
                    ))
                    .into());
                };
                self.snapshot(frame, r, lo, hi)
            }
            ExprKind::MCase { ty: _, arms } => {
                let mut vals = Vec::with_capacity(arms.len());
                for (m, arm) in arms {
                    vals.push((m.clone(), self.eval(frame, arm)?));
                }
                Ok(Value::MCase(Arc::new(vals)))
            }
            ExprKind::Elim { expr, mode } => {
                let v = self.eval(frame, expr)?;
                let Value::MCase(arms) = v else {
                    return Err(RtError::Native(format!(
                        "`<|` on a {}",
                        v.kind()
                    ))
                    .into());
                };
                let target = match mode {
                    Some(m) => self.resolve_mode(frame, m)?,
                    None => frame.mode.clone(),
                };
                self.eliminate(&arms, &target)
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary(frame, *op, lhs, rhs),
            ExprKind::Unary { op, expr } => {
                let v = self.eval(frame, expr)?;
                let v = self.force(frame, v)?;
                match (op, v) {
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(-n)),
                    (UnOp::Neg, Value::Double(x)) => Ok(Value::Double(-x)),
                    (op, v) => {
                        Err(RtError::Native(format!("cannot apply `{op}` to a {}", v.kind()))
                            .into())
                    }
                }
            }
            ExprKind::If { cond, then, els } => {
                let c = self.eval(frame, cond)?;
                let c = self.force(frame, c)?;
                let Value::Bool(b) = c else {
                    return Err(RtError::Native(format!(
                        "if condition is a {}",
                        c.kind()
                    ))
                    .into());
                };
                if b {
                    self.eval(frame, then)
                } else {
                    match els {
                        Some(els) => self.eval(frame, els),
                        None => Ok(Value::Unit),
                    }
                }
            }
            ExprKind::Block(stmts) => {
                let depth = frame.locals.len();
                let mut last = Value::Unit;
                for stmt in stmts {
                    match stmt {
                        Stmt::Let { name, value, .. } => {
                            let v = self.eval(frame, value)?;
                            frame.locals.push((name.clone(), v));
                            last = Value::Unit;
                        }
                        Stmt::Expr(e) => {
                            last = self.eval(frame, e)?;
                        }
                        Stmt::Return(e) => {
                            let v = self.eval(frame, e)?;
                            frame.locals.truncate(depth);
                            return Err(Flow::Return(v));
                        }
                    }
                }
                frame.locals.truncate(depth);
                Ok(last)
            }
            ExprKind::Try { body, handler } => match self.eval(frame, body) {
                Err(Flow::Error(RtError::EnergyException(_))) => self.eval(frame, handler),
                other => other,
            },
            ExprKind::ArrayLit(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for item in items {
                    vals.push(self.eval(frame, item)?);
                }
                Ok(Value::Array(Arc::new(vals)))
            }
        }
    }

    fn binary(&mut self, frame: &mut Frame, op: BinOp, lhs: &Expr, rhs: &Expr) -> EvalResult {
        // Short-circuit && / ||.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval(frame, lhs)?;
            let l = self.force(frame, l)?;
            let Value::Bool(lb) = l else {
                return Err(RtError::Native(format!("`{op}` on a {}", l.kind())).into());
            };
            if (op == BinOp::And && !lb) || (op == BinOp::Or && lb) {
                return Ok(Value::Bool(lb));
            }
            let r = self.eval(frame, rhs)?;
            let r = self.force(frame, r)?;
            let Value::Bool(rb) = r else {
                return Err(RtError::Native(format!("`{op}` on a {}", r.kind())).into());
            };
            return Ok(Value::Bool(rb));
        }

        let l = self.eval(frame, lhs)?;
        let l = self.force(frame, l)?;
        let r = self.eval(frame, rhs)?;
        let r = self.force(frame, r)?;
        use BinOp::*;
        let err = |l: &Value, r: &Value| -> Flow {
            RtError::Native(format!("cannot apply `{op}` to {} and {}", l.kind(), r.kind()))
                .into()
        };
        match (op, &l, &r) {
            (Add, Value::Str(a), b) => Ok(Value::str(format!("{a}{}", b.display_string()))),
            (Add, a, Value::Str(b)) => Ok(Value::str(format!("{}{b}", a.display_string()))),
            (Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
            (Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
            (Div, Value::Int(_), Value::Int(0)) => {
                Err(RtError::Native("division by zero".into()).into())
            }
            (Div, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_div(*b))),
            (Rem, Value::Int(_), Value::Int(0)) => {
                Err(RtError::Native("remainder by zero".into()).into())
            }
            (Rem, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_rem(*b))),
            (Add, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a + b)),
            (Sub, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a - b)),
            (Mul, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a * b)),
            (Div, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a / b)),
            (Rem, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a % b)),
            (Lt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a < b)),
            (Le, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a <= b)),
            (Gt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a > b)),
            (Ge, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a >= b)),
            (Lt, Value::Double(a), Value::Double(b)) => Ok(Value::Bool(a < b)),
            (Le, Value::Double(a), Value::Double(b)) => Ok(Value::Bool(a <= b)),
            (Gt, Value::Double(a), Value::Double(b)) => Ok(Value::Bool(a > b)),
            (Ge, Value::Double(a), Value::Double(b)) => Ok(Value::Bool(a >= b)),
            (Eq, a, b) => Ok(Value::Bool(a == b)),
            (Ne, a, b) => Ok(Value::Bool(a != b)),
            _ => Err(err(&l, &r)),
        }
    }

    // ---- builtins --------------------------------------------------------------

    fn builtin(&mut self, ns: &str, name: &str, args: Vec<Value>) -> EvalResult {
        let native = |msg: String| -> Flow { RtError::Native(msg).into() };
        match (ns, name, args.as_slice()) {
            ("Ext", "battery", []) => Ok(Value::Double(self.sim.battery_level())),
            ("Ext", "temperature", []) => Ok(Value::Double(self.sim.temperature_c())),
            ("Ext", "timeMs", []) => Ok(Value::Double(self.sim.time_s() * 1000.0)),
            ("Sim", "work", [Value::Str(kind), Value::Double(units)]) => {
                self.sim.do_work(WorkKind::parse(kind), *units);
                Ok(Value::Unit)
            }
            ("Sim", "sleepMs", [Value::Int(ms)]) => {
                self.sim.sleep_ms(*ms as f64);
                Ok(Value::Unit)
            }
            ("Sim", "rand", []) => Ok(Value::Double(self.sim.rand())),
            ("IO", "print", [v]) => {
                self.output.push(v.display_string());
                Ok(Value::Unit)
            }
            ("Str", "len", [Value::Str(s)]) => Ok(Value::Int(s.chars().count() as i64)),
            ("Str", "ofInt", [Value::Int(n)]) => Ok(Value::str(n.to_string())),
            ("Str", "ofDouble", [Value::Double(x)]) => Ok(Value::str(format!("{x}"))),
            ("Str", "sub", [Value::Str(s), Value::Int(a), Value::Int(b)]) => {
                let chars: Vec<char> = s.chars().collect();
                let a = (*a).clamp(0, chars.len() as i64) as usize;
                let b = (*b).clamp(a as i64, chars.len() as i64) as usize;
                Ok(Value::str(chars[a..b].iter().collect::<String>()))
            }
            ("Math", "floor", [Value::Double(x)]) => Ok(Value::Int(x.floor() as i64)),
            ("Math", "toDouble", [Value::Int(n)]) => Ok(Value::Double(*n as f64)),
            ("Math", "min", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.min(b))),
            ("Math", "max", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.max(b))),
            ("Math", "fmin", [Value::Double(a), Value::Double(b)]) => {
                Ok(Value::Double(a.min(*b)))
            }
            ("Math", "fmax", [Value::Double(a), Value::Double(b)]) => {
                Ok(Value::Double(a.max(*b)))
            }
            ("Math", "abs", [Value::Int(n)]) => Ok(Value::Int(n.abs())),
            ("Math", "sqrt", [Value::Double(x)]) => Ok(Value::Double(x.sqrt())),
            ("Math", "pow", [Value::Double(a), Value::Double(b)]) => {
                Ok(Value::Double(a.powf(*b)))
            }
            ("Arr", "range", [Value::Int(a), Value::Int(b)]) => {
                let items: Vec<Value> = (*a..*b).map(Value::Int).collect();
                Ok(Value::Array(Arc::new(items)))
            }
            ("Arr", "len", [Value::Array(items)]) => Ok(Value::Int(items.len() as i64)),
            ("Arr", "get", [Value::Array(items), Value::Int(i)]) => items
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| native(format!("array index {i} out of bounds (len {})", items.len()))),
            ("Arr", "sub", [Value::Array(items), Value::Int(a), Value::Int(b)]) => {
                let a = (*a).clamp(0, items.len() as i64) as usize;
                let b = (*b).clamp(a as i64, items.len() as i64) as usize;
                Ok(Value::Array(Arc::new(items[a..b].to_vec())))
            }
            ("Arr", "concat", [Value::Array(a), Value::Array(b)]) => {
                let mut out = a.to_vec();
                out.extend(b.iter().cloned());
                Ok(Value::Array(Arc::new(out)))
            }
            ("Arr", "push", [Value::Array(a), v]) => {
                let mut out = a.to_vec();
                out.push(v.clone());
                Ok(Value::Array(Arc::new(out)))
            }
            ("Arr", "make", [Value::Int(n), v]) => {
                Ok(Value::Array(Arc::new(vec![v.clone(); (*n).max(0) as usize])))
            }
            _ => Err(native(format!(
                "unknown or misapplied builtin `{ns}.{name}` with {} args",
                args.len()
            ))),
        }
    }
}
