//! The ENT interpreter: the paper's operational semantics (§4.2) extended
//! with the practical expression forms, executing against the simulated
//! energy platform.
//!
//! The interpreter executes the indexed IR produced by [`crate::lower`]:
//! programs are lowered once at load time — names interned to dense ids,
//! variables resolved to frame slots, fields to per-class slot offsets,
//! sends to vtable indices, mode environments to indexed vectors — and the
//! evaluator then runs without any string comparison, name-keyed map probe,
//! or environment cloning on its hot paths. [`run`] lowers and runs in one
//! call; [`run_lowered`] executes an already-lowered program (the perf
//! harness lowers once and runs many times).
//!
//! The ENT-specific runtime machinery:
//!
//! * **Mode tagging** — every object carries a mode tag; dynamic objects
//!   are untagged (`?`) until snapshotted.
//! * **Snapshot** — evaluates the object's attributor, performs the `check`
//!   against the declared bounds (throwing the catchable
//!   [`RtError::EnergyException`] on a *bad check*), and produces a
//!   statically-moded copy. Copying is lazy, as in the paper's compiler: the
//!   first snapshot tags the object in place; only subsequent snapshots
//!   physically (shallowly) copy.
//! * **dfall** — the dynamic waterfall invariant is re-checked at every
//!   message send; for well-typed programs it never fires (Corollary 1),
//!   which the soundness tests verify.

// The bytecode dispatch loop lives in its own file but is a child module
// of the interpreter, sharing all of the private machinery below (heap,
// invoke, snapshot, builtins, events, profiler) so both engines observe
// identical semantics structurally.
#[path = "vm.rs"]
mod vm;

// The tier-2 closure-threaded engine is likewise a child module: its ops
// call straight into the same private `Interp` machinery the bytecode VM
// uses, and deopt hands a live frame back to `vm::exec_from`.
#[path = "threaded/mod.rs"]
pub(crate) mod threaded;

// The enforcement strategies (guarded/transient) are likewise child
// modules: every obligation check both engines perform funnels through
// the seam in `enforce`, which dispatches on
// `RuntimeConfig::enforcement`.
#[path = "enforce/mod.rs"]
mod enforce;

pub use enforce::Enforcement;

use std::sync::Arc;

use ent_core::CompiledProgram;
use ent_energy::{
    EnergySim, FaultInjector, FaultPlan, Measurement, Platform, Sample, SensorKind, SensorRead,
    WorkKind,
};
use ent_modes::ModeName;
use ent_syntax::{BinOp, Symbol};

use crate::error::{Flow, RtError};
use crate::events::{EnergyEvent, EventPayload, EventRing, FaultServe};
use crate::lower::{
    lower_program, BOp, BodyCell, EnvSrc, GMode, LExpr, LMethod, LMode, LOverride, LStmt,
    LoweredProgram, MDefault, MethodEntry,
};
use crate::profile::{
    AnyProfiler, Profile, ProfileMode, ProfileReport, SampledProfile, StackShadow,
};
use crate::value::{ObjRef, Value};

/// Which evaluation engine executes method bodies.
///
/// Both engines run the same lowered IR through the same runtime machinery
/// (heap, snapshots, dfall checks, builtins, events, profiler) and are
/// bit-identical in every observable — output, `RunStats`, event stream,
/// telemetry, errors — which the golden suite and the differential fuzz
/// harness pin under both settings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The recursive tree-walking evaluator over the lowered `LExpr` IR.
    Tree,
    /// The flat register-bytecode VM: bodies are compiled lazily (once per
    /// program, cached on the lowered program so batch runs share them)
    /// into superinstruction-fused bytecode with mode-decision inline
    /// caches. The default.
    #[default]
    Bytecode,
    /// The tier-2 closure-threaded engine: hot bodies (per
    /// [`RuntimeConfig::tier_up`]) are further compiled from bytecode into
    /// a flat array of monomorphized fn-pointer ops with pre-resolved
    /// operands; guarded ops deopt back to the bytecode VM at the faulting
    /// site (see [`TierStats`]). Cold bodies run on the bytecode VM.
    Threaded,
}

impl Engine {
    /// Parses a CLI-facing engine name (`tree` | `bytecode` | `threaded`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "tree" => Some(Engine::Tree),
            "bytecode" => Some(Engine::Bytecode),
            "threaded" => Some(Engine::Threaded),
            _ => None,
        }
    }

    /// The CLI-facing name of this engine.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Tree => "tree",
            Engine::Bytecode => "bytecode",
            Engine::Threaded => "threaded",
        }
    }
}

/// When the threaded engine promotes a body from bytecode to tier-2
/// threaded code. Promotion is profile-guided: each body carries a hit
/// counter and compiles (lazily, once per program — batch runs share the
/// compiled tier like they share bytecode) when the counter crosses the
/// threshold. Tier choice is perf-only and never observable: `--tier-up 0`
/// and `--tier-up off` runs are byte-identical, which CI gates pin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierUp {
    /// Promote on the first invocation (`--tier-up 0`).
    Always,
    /// Never promote; the threaded engine degenerates to pure bytecode
    /// (`--tier-up off`).
    Never,
    /// Promote once a body has been invoked this many times.
    After(u32),
}

impl Default for TierUp {
    fn default() -> Self {
        TierUp::After(DEFAULT_TIER_UP_THRESHOLD)
    }
}

/// Default hot-body threshold: low enough that every benchmark-relevant
/// body tiers up within warmup, high enough that one-shot init bodies
/// skip the compile.
pub const DEFAULT_TIER_UP_THRESHOLD: u32 = 8;

impl TierUp {
    /// Parses a CLI-facing threshold: `off` never promotes, `0` always
    /// promotes, `N` promotes after `N` invocations.
    pub fn parse(s: &str) -> Option<TierUp> {
        match s {
            "off" => Some(TierUp::Never),
            _ => match s.parse::<u32>() {
                Ok(0) => Some(TierUp::Always),
                Ok(n) => Some(TierUp::After(n)),
                Err(_) => None,
            },
        }
    }

    /// The CLI-facing spelling of this threshold.
    pub fn display(self) -> String {
        match self {
            TierUp::Always => "0".to_string(),
            TierUp::Never => "off".to_string(),
            TierUp::After(n) => n.to_string(),
        }
    }

    /// The process-default threshold: `ENT_TIER_UP` (`off` | `0` | `N`),
    /// or the default threshold when unset or unparseable.
    pub fn from_env() -> TierUp {
        std::env::var("ENT_TIER_UP")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }
}

/// Configuration for a single program run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Suppress ENT's runtime errors (failed checks proceed as if they had
    /// passed). This is the paper's "silent" configuration for the E1
    /// experiments: tagging stays in place, exceptions are never thrown.
    pub silent: bool,
    /// Model the runtime cost of mode tagging and snapshot copying as
    /// simulator work (disable for the no-op baseline of Figure 6).
    pub tagging: bool,
    /// Initial battery level fraction.
    pub battery_level: f64,
    /// Gas limit: abstract evaluation steps before [`RtError::OutOfGas`].
    pub gas_limit: u64,
    /// Seed for the simulator's noise and `Sim.rand`.
    pub seed: u64,
    /// Sample a `(time, temperature)` trace at this interval, in seconds.
    pub trace_interval_s: Option<f64>,
    /// Ablation: copy on *every* snapshot instead of the paper's lazy
    /// strategy (first snapshot tags in place).
    pub eager_copy: bool,
    /// Ablation: deep-copy the object graph on snapshot instead of the
    /// paper's shallow copy (§6.3 discusses this design choice).
    pub deep_copy: bool,
    /// Record structured [`EnergyEvent`]s in [`RunResult::events`]. Events
    /// are fixed-size interned-id records written into a preallocated ring
    /// buffer, so recording costs a branch plus a store and is safe to
    /// leave on during benchmark runs. Off by default (the zero-overhead
    /// configuration records nothing at all).
    pub record_events: bool,
    /// Ring-buffer capacity for event recording: the newest
    /// `events_capacity` events are retained, older ones are counted in
    /// [`crate::EventRing::dropped`].
    pub events_capacity: usize,
    /// Attribute steps, simulated energy/time, snapshots, copies, and
    /// check failures to the method call tree, reported as
    /// [`RunResult::profile`]. Three-state: `Off` (default; the
    /// interpreter pays only a branch per frame), `Exact` (the
    /// shadow-call-tree ground truth), or `Sampled` (periodic stack
    /// sampling with confidence intervals — see [`crate::SampledProfile`]).
    pub profile: ProfileMode,
    /// Stack size, in bytes, of the worker thread the evaluator recurses
    /// on (deep-but-legitimate ENT recursion needs far more stack than a
    /// default thread provides). Defaults to
    /// [`crate::default_stack_size`]: 512 MiB of lazily-committed virtual
    /// memory, overridable process-wide via `ENT_STACK_SIZE` (bytes, or
    /// with a `k`/`m`/`g` suffix). Clamped to at least 1 MiB.
    pub stack_size: usize,
    /// Deterministic sensor-fault regime to inject, seeded by
    /// [`RuntimeConfig::fault_seed`]. `None` (or a no-op plan) keeps the
    /// interpreter on exactly its historical code path — one branch per
    /// sensor read, bit-identical results.
    pub faults: Option<FaultPlan>,
    /// Seed for the fault injector's decision stream — deliberately
    /// separate from [`RuntimeConfig::seed`] so the same program run can
    /// be replayed under different fault schedules (and vice versa).
    pub fault_seed: u64,
    /// How long (virtual seconds) a last-known-good sensor reading may be
    /// served for a faulted read before the runtime stops trusting it and
    /// degrades to the conservative sentinel.
    pub staleness_bound_s: f64,
    /// Which engine executes method bodies (bytecode by default; `tree`
    /// keeps the recursive evaluator for differential testing and
    /// benchmarking).
    pub engine: Engine,
    /// Which enforcement strategy discharges mode obligations: `guarded`
    /// (the paper's deep snapshot/dfall semantics; default) or
    /// `transient` (shallow first-order checks with check-site blame —
    /// see [`Enforcement`]).
    pub enforcement: Enforcement,
    /// Hot-body promotion threshold for the threaded engine (ignored by
    /// the other engines). See [`TierUp`].
    pub tier_up: TierUp,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            silent: false,
            tagging: true,
            battery_level: 1.0,
            gas_limit: 200_000_000,
            seed: 0,
            trace_interval_s: None,
            eager_copy: false,
            deep_copy: false,
            record_events: false,
            events_capacity: 16_384,
            profile: ProfileMode::Off,
            stack_size: crate::stack::default_stack_size(),
            faults: None,
            fault_seed: 0,
            staleness_bound_s: 5.0,
            engine: Engine::default(),
            enforcement: Enforcement::default(),
            tier_up: TierUp::default(),
        }
    }
}

/// Statistics gathered during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Abstract evaluation steps executed.
    pub steps: u64,
    /// Snapshot expressions evaluated.
    pub snapshots: u64,
    /// Physical object copies made by snapshots (lazy copying makes this
    /// less than or equal to `snapshots`).
    pub copies: u64,
    /// `EnergyException`s raised (including caught ones).
    pub energy_exceptions: u64,
    /// Snapshot checks whose produced mode fell outside the declared
    /// bounds (a subset of `energy_exceptions`; also counted when
    /// running silent).
    pub snapshot_failures: u64,
    /// Dynamic waterfall checks that failed at a message send (the other
    /// subset of `energy_exceptions`).
    pub dfall_failures: u64,
    /// Objects allocated with a dynamic mode (the tagged portion of the
    /// heap).
    pub dynamic_allocs: u64,
    /// Total objects allocated.
    pub allocs: u64,
    /// Sensor reads that came back faulted (dropped, stale, or silently
    /// corrupted). Always 0 without fault injection.
    pub sensor_faults: u64,
    /// Faulted reads served from the last-known-good value within the
    /// staleness bound (a subset of `sensor_faults`).
    pub stale_reads: u64,
    /// Mode decisions (snapshots or method attributions) taken while a
    /// sensor read had degraded past the staleness bound: the runtime
    /// substituted the conservative mode (the snapshot's `lo`, or the
    /// sender's mode for method attributors).
    pub degraded_decisions: u64,
    /// Shallow checks performed by the transient enforcement strategy
    /// (boundaries, call sites, and field reads). Always 0 under guarded.
    pub transient_checks: u64,
    /// Transient checks that failed (each also counts toward
    /// `energy_exceptions`; disjoint from `snapshot_failures` and
    /// `dfall_failures`, which belong to the guarded strategy).
    pub transient_failures: u64,
}

/// Why a threaded body abandoned tier-2 execution and resumed on the
/// bytecode VM. Each compiled body carries guards for exactly these
/// conditions; a deopt re-enters the bytecode interpreter *at the
/// faulting instruction* (the threaded ops stay pc-aligned with the
/// bytecode stream, so the handoff needs no side tables) and the rest of
/// the body runs to completion there — byte-identical to a pure-bytecode
/// run, which the deopt-path tests pin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeoptReason {
    /// The run's enforcement strategy is not the one the threaded tier
    /// compiles against (`--enforce transient`): the body defers to
    /// bytecode at entry.
    Enforcement,
    /// The energy-decision window rolled mid-body (fault injection with a
    /// decision window): a pending mode decision (snapshot or `<|`) bails
    /// out before deciding.
    ModeWindow,
    /// A send site's inline cache went megamorphic — too many receiver
    ///-class transitions this run for the monomorphic fast path to be
    /// worth guarding.
    IcMegamorphic,
    /// A sensor read came back faulted, bumping the injector epoch: the
    /// remainder of the body defers to bytecode, which owns the
    /// degradation ladder's slow paths.
    FaultEpoch,
}

/// Tiering counters for one run of the threaded engine (all zero on the
/// other engines). Deliberately *not* part of [`RunStats`]: stats are part
/// of the cross-engine bit-identical contract (the differential harness
/// compares them verbatim), while tier choice is a perf-only detail that
/// legitimately varies with `--tier-up`. Surfaced as the `tier` object in
/// `ent-run-telemetry/1`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Bodies entered in tier-2 threaded code.
    pub threaded_entries: u64,
    /// Bodies compiled to threaded code during this run (program-wide
    /// caching makes this 0 for all but the first run over a program).
    pub threaded_compiles: u64,
    /// Guard-triggered handoffs back to the bytecode VM, by reason.
    pub deopt_enforcement: u64,
    /// See [`DeoptReason::ModeWindow`].
    pub deopt_mode_window: u64,
    /// See [`DeoptReason::IcMegamorphic`].
    pub deopt_ic_megamorphic: u64,
    /// See [`DeoptReason::FaultEpoch`].
    pub deopt_fault_epoch: u64,
}

impl TierStats {
    /// Total deopts across all reasons.
    pub fn deopts(&self) -> u64 {
        self.deopt_enforcement
            + self.deopt_mode_window
            + self.deopt_ic_megamorphic
            + self.deopt_fault_epoch
    }

    pub(crate) fn deopt(&mut self, reason: DeoptReason) {
        match reason {
            DeoptReason::Enforcement => self.deopt_enforcement += 1,
            DeoptReason::ModeWindow => self.deopt_mode_window += 1,
            DeoptReason::IcMegamorphic => self.deopt_ic_megamorphic += 1,
            DeoptReason::FaultEpoch => self.deopt_fault_epoch += 1,
        }
    }
}

/// The result of running an ENT program.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The value `main` returned, or the error that stopped the program.
    pub value: Result<Value, RtError>,
    /// A deep, heap-resolved rendering of the result value (objects print
    /// as `Class@mode{field=…}`), for display and for differential tests
    /// against the formal machine. `None` when the run failed.
    pub value_pretty: Option<String>,
    /// The simulator's final measurement (energy, time, peak temperature).
    pub measurement: Measurement,
    /// Lines produced by `IO.print`.
    pub output: Vec<String>,
    /// Runtime statistics.
    pub stats: RunStats,
    /// The sampled `(time, temperature)` trace, if sampling was enabled —
    /// the temperature column of [`RunResult::samples`], kept in this
    /// shape for the E3 experiment harness.
    pub trace: Vec<(f64, f64)>,
    /// The full periodic state samples (time, temperature, battery,
    /// energy), if [`RuntimeConfig::trace_interval_s`] was set.
    pub samples: Vec<Sample>,
    /// Structured energy events, oldest-first (§6.3 debugging). Empty
    /// unless [`RuntimeConfig::record_events`] was set; render with
    /// [`crate::render_event`].
    pub events: EventRing,
    /// The per-method attribution report — exact or sampled, matching
    /// [`RuntimeConfig::profile`] — when profiling was on.
    pub profile: Option<ProfileReport>,
    /// The adaptation mode in force when the run executed (see
    /// [`crate::adapt`]); `frozen` pins [`RunResult::adapt_generation`].
    pub adapt_mode: crate::adapt::AdaptMode,
    /// The adaptive-config generation the run observed. Stable across
    /// runs under `--adapt frozen`/`off`; advances as the tuner publishes
    /// under `--adapt on`. Never affects values, stats, or measurements.
    pub adapt_generation: u64,
    /// The enforcement strategy the run executed under (mirrors
    /// [`RuntimeConfig::enforcement`]; surfaced in telemetry).
    pub enforcement: Enforcement,
    /// Tier-up/deopt counters for the threaded engine (all zero on the
    /// other engines; see [`TierStats`] for why they live outside
    /// [`RunStats`]).
    pub tier: TierStats,
}

/// Runs a compiled program's `Main.main()` on a simulated platform.
///
/// Lowers the program to the indexed runtime IR and executes it; to run
/// the same program many times, lower once with [`lower_program`] and call
/// [`run_lowered`] per run.
///
/// # Example
///
/// ```
/// use ent_core::compile;
/// use ent_energy::Platform;
/// use ent_runtime::{run, RuntimeConfig, Value};
///
/// let compiled = compile(
///     "class Main { int main() { return 6 * 7; } }",
/// ).unwrap();
/// let result = run(&compiled, Platform::system_a(), RuntimeConfig::default());
/// assert_eq!(result.value.unwrap(), Value::Int(42));
/// ```
pub fn run(compiled: &CompiledProgram, platform: Platform, config: RuntimeConfig) -> RunResult {
    let lowered = lower_program(compiled);
    run_lowered(&lowered, platform, config)
}

/// Runs an already-lowered program's `Main.main()` on a simulated platform.
///
/// # Example
///
/// ```
/// use ent_core::compile;
/// use ent_energy::Platform;
/// use ent_runtime::{lower_program, run_lowered, RuntimeConfig, Value};
///
/// let compiled = compile(
///     "class Main { int main() { return 6 * 7; } }",
/// ).unwrap();
/// let lowered = lower_program(&compiled);
/// for seed in 0..3 {
///     let config = RuntimeConfig { seed, ..RuntimeConfig::default() };
///     let result = run_lowered(&lowered, Platform::system_a(), config);
///     assert_eq!(result.value.unwrap(), Value::Int(42));
/// }
/// ```
pub fn run_lowered(prog: &LoweredProgram, platform: Platform, config: RuntimeConfig) -> RunResult {
    // ENT iteration is recursion-based, and the evaluator is recursive, so
    // deep-but-legitimate programs need far more stack than a default test
    // thread provides (the explicit call-depth guard turns true runaway
    // recursion into `RtError::StackOverflow` long before the big stack is
    // exhausted). `with_interp_stack` runs the evaluation on a scoped
    // big-stack worker — or directly, when the current thread already is
    // one (the batch engine's pool workers, which amortize one spawn over
    // many runs). Re-entrant and concurrency-safe: any number of threads
    // may run the same `LoweredProgram` simultaneously.
    let stack_size = config.stack_size;
    crate::stack::with_interp_stack(stack_size, move || {
        run_on_current_thread(prog, platform, config)
    })
}

// The engine hands one `LoweredProgram` to many worker threads at once and
// `with_interp_stack` ships borrowed programs and results across threads;
// both are sound only while these stay thread-safe (the interners inside
// are `Arc<str>`-backed), so regressions fail here at compile time.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<LoweredProgram>();
const _: () = assert_send_sync::<RunResult>();
const _: () = assert_send_sync::<RuntimeConfig>();

fn run_on_current_thread(
    prog: &LoweredProgram,
    platform: Platform,
    config: RuntimeConfig,
) -> RunResult {
    let mut sim = EnergySim::new(platform, config.seed);
    sim.set_battery_level(config.battery_level);
    if let Some(interval) = config.trace_interval_s {
        sim.enable_sampling(interval);
    }
    // A no-op plan must not even install an injector: the fault-off run
    // (and the `--faults off` run) stays on the historical code path.
    let faults_on = match &config.faults {
        Some(plan) if !plan.is_noop() => {
            sim.set_fault_injector(Some(FaultInjector::new(plan.clone(), config.fault_seed)));
            true
        }
        _ => false,
    };
    let mut interp = Interp {
        prog,
        heap: Vec::new(),
        sim,
        output: Vec::new(),
        stats: RunStats::default(),
        depth: 0,
        max_depth: max_call_depth(config.stack_size),
        events: if config.record_events {
            EventRing::with_capacity(config.events_capacity)
        } else {
            EventRing::default()
        },
        profiler: AnyProfiler::new(config.profile),
        faults_on,
        last_good: [None; 2],
        degraded: false,
        locals_pool: Vec::new(),
        env_pool: Vec::new(),
        ic_send: Vec::new(),
        ic_arm: Vec::new(),
        ic_snap: Vec::new(),
        ic_poly: Vec::new(),
        tier: TierStats::default(),
        config,
    };
    let value = interp.run_main();
    let value_pretty = value.as_ref().ok().map(|v| interp.render_deep(v, 0));
    // Noise-free end-of-run totals for the profilers, read before
    // `finish()` applies measurement noise to the whole-run figures.
    let end_steps = interp.stats.steps;
    let end_energy_j = interp.sim.energy_j();
    let end_time_s = interp.sim.time_s();
    let measurement = interp.sim.finish();
    let samples = interp.sim.samples().to_vec();
    let trace = samples.iter().map(|p| (p.t_s, p.temp_c)).collect();
    let profile = interp.profiler.take().map(|mut p| {
        p.on_finish(end_steps);
        match p {
            AnyProfiler::Exact(e) => ProfileReport::Exact(Profile::build(&e, prog)),
            AnyProfiler::Sampled(s) => ProfileReport::Sampled(SampledProfile::build(
                &s,
                prog,
                end_steps,
                end_energy_j,
                end_time_s,
            )),
        }
    });
    RunResult {
        value,
        value_pretty,
        measurement,
        output: interp.output,
        stats: interp.stats,
        trace,
        samples,
        events: interp.events,
        profile,
        adapt_mode: crate::adapt::mode(),
        adapt_generation: crate::adapt::snapshot().0,
        enforcement: interp.config.enforcement,
        tier: interp.tier,
    }
}

/// Maximum ENT call depth before [`RtError::StackOverflow`].
const MAX_CALL_DEPTH: usize = 50_000;

/// Native stack budgeted per ENT call frame when deriving the depth limit
/// from a configured stack size. Measured usage is ~2.5 KiB per frame;
/// the 3x headroom absorbs expression-nesting frames that add native
/// depth without ENT depth. At the default 512 MiB stack the derived
/// limit exceeds `MAX_CALL_DEPTH`, so default behavior is unchanged.
#[cfg(not(debug_assertions))]
const STACK_BYTES_PER_FRAME: usize = 8 * 1024;
/// Unoptimized evaluator frames are several times larger than release
/// frames; without the bigger budget a debug-build run with a small
/// configured stack overflows the native stack (aborting the process)
/// before the depth guard can return [`RtError::StackOverflow`].
#[cfg(debug_assertions)]
const STACK_BYTES_PER_FRAME: usize = 24 * 1024;

/// The ENT call-depth limit for a given interpreter stack size: small
/// configured stacks must fail with [`RtError::StackOverflow`] rather
/// than overflow the native stack and abort the process.
fn max_call_depth(stack_size: usize) -> usize {
    MAX_CALL_DEPTH
        .min(stack_size / STACK_BYTES_PER_FRAME)
        .max(64)
}

/// Largest array a single `Arr.make`/`Arr.range` may allocate (16M
/// elements ≈ 0.5 GiB of `Value`s): a hostile `Arr.make(9e18, v)` must
/// surface as a runtime error, not an allocator abort.
const MAX_ARRAY_LEN: i64 = 1 << 24;

/// Simulator work charged per snapshot (attributor dispatch + metadata).
const SNAPSHOT_OVERHEAD_OPS: f64 = 1.2e4;
/// Simulator work charged per physical snapshot copy.
const COPY_OVERHEAD_OPS: f64 = 3.0e4;
/// Simulator work charged per dynamic (tagged) allocation.
const TAG_OVERHEAD_OPS: f64 = 2.0e3;

/// The runtime mode tag of an object: dynamic objects are untagged until
/// their first snapshot.
#[derive(Clone, Copy, Debug)]
enum RtTag {
    Dynamic,
    Ground(GMode),
}

impl RtTag {
    fn ground(self) -> Option<GMode> {
        match self {
            RtTag::Dynamic => None,
            RtTag::Ground(m) => Some(m),
        }
    }
}

/// A heap object.
#[derive(Clone, Debug)]
struct ObjData {
    /// Class id (index into [`LoweredProgram::classes`]).
    class: u32,
    mode: RtTag,
    /// Ground bindings for the class's mode parameters, slot-indexed
    /// ([`GMode::Missing`] marks an unbound parameter; the internal
    /// parameter of a dynamic object is bound at snapshot time).
    mode_env: Vec<GMode>,
    fields: Vec<Value>,
    /// Lazy-copy metadata: whether this dynamic object has been
    /// snapshotted before (paper §5, "Implementation").
    snapshotted: bool,
}

/// A call frame.
#[derive(Debug)]
struct Frame {
    /// Slot-indexed locals: parameters first, then block-scoped lets.
    locals: Vec<Value>,
    this_ref: Option<ObjRef>,
    /// The current closure mode `m` of `cl(m, e)`.
    mode: GMode,
    /// Slot-indexed mode environment (layout fixed at lowering time).
    env: Vec<GMode>,
    /// First parameter slot that received no argument (arity-mismatched
    /// unchecked calls); reads at or above it report "unbound variable".
    unbound_lo: u32,
    /// Declared parameter count (slots below it are parameters).
    n_params: u32,
}

/// Pads or truncates call arguments to the declared parameter count,
/// returning the slot-indexed locals and the first unbound parameter slot
/// (`u32::MAX` when fully applied).
fn make_locals(mut args: Vec<Value>, n_params: u32) -> (Vec<Value>, u32) {
    let n = n_params as usize;
    let unbound_lo = if args.len() < n {
        args.len() as u32
    } else {
        u32::MAX
    };
    args.resize(n, Value::Unit);
    (args, unbound_lo)
}

/// Projects an object's mode environment through a pre-compiled
/// (class → owner) environment map, appending into `out` (a recycled
/// vector from [`Interp::grab_env`] at the hot call sites).
fn apply_env_into(obj_env: &[GMode], map: &[EnvSrc], out: &mut Vec<GMode>) {
    out.extend(map.iter().map(|src| match *src {
        EnvSrc::Copy(i) => obj_env[i as usize],
        EnvSrc::SlotOrVar { slot, var } => match obj_env[slot as usize] {
            GMode::Missing => GMode::Var(var),
            g => g,
        },
        EnvSrc::Ground(g) => g,
    }));
}

struct Interp<'p> {
    prog: &'p LoweredProgram,
    heap: Vec<ObjData>,
    sim: EnergySim,
    config: RuntimeConfig,
    output: Vec<String>,
    stats: RunStats,
    /// Current ENT call depth (for the stack guard).
    depth: usize,
    /// Depth limit derived from the configured stack size.
    max_depth: usize,
    /// Structured event ring (only fed when `record_events` is on).
    events: EventRing,
    /// The attribution profiler — exact or sampled — when `profile` is
    /// not `Off`.
    profiler: Option<AnyProfiler>,
    /// Whether a (non-noop) fault injector is installed. When false,
    /// sensor reads take the historical direct path — one predictable
    /// branch, bit-identical behavior.
    faults_on: bool,
    /// Last clean `(virtual time, value)` per sensor
    /// ([`SensorKind::index`]-indexed), for the last-known-good fallback.
    last_good: [Option<(f64, f64)>; 2],
    /// Set when a faulted read degrades past the staleness bound; mode
    /// decisions consult and clear it to substitute conservative modes.
    degraded: bool,
    /// Recycled call-frame register files: completed invocations park
    /// their `locals` vector here and bytecode call sites draw argument
    /// vectors from it, so steady-state calls reuse one allocation whose
    /// capacity already grew to the largest `frame_size` seen instead of
    /// paying a malloc (and a realloc in `run_body`) plus a free per call.
    locals_pool: Vec<Vec<Value>>,
    /// Recycled mode-environment vectors, pooled like `locals_pool`: every
    /// send projects the receiver's environment through the entry's map
    /// into one of these instead of a fresh allocation.
    env_pool: Vec<Vec<GMode>>,
    /// Per-run send-site inline caches (bytecode engine), indexed by the
    /// program-wide site ids allocated during lazy compilation. Grown on
    /// demand; never shared across runs, so no cross-run or cross-thread
    /// contamination is possible.
    ic_send: Vec<Option<vm::SendIc<'p>>>,
    /// Per-run `<|` arm-selection caches (bytecode engine).
    ic_arm: Vec<Option<vm::ArmIc>>,
    /// Per-run snapshot bounds-verdict caches (bytecode engine).
    ic_snap: Vec<Option<vm::SnapIc>>,
    /// Per-run send-site polymorphism counters (threaded engine), indexed
    /// like `ic_send`: each IC miss in threaded code bumps the site's
    /// count, and a site that transitions too often deopts as
    /// megamorphic. Saturating, never reset within a run — deterministic
    /// for a deterministic run.
    ic_poly: Vec<u8>,
    /// Tiering counters for this run (threaded engine only).
    tier: TierStats,
}

type EvalResult = Result<Value, Flow>;

impl<'p> Interp<'p> {
    fn run_main(&mut self) -> Result<Value, RtError> {
        let Some((main_class, main_method)) = self.prog.main else {
            return Err(RtError::NoMain);
        };
        let n_params = self.prog.classes[main_class as usize].n_mode_params as usize;
        // boot(P) = cl(⊤, main-body) on a fresh Main object.
        let this_ref = match self.allocate(
            main_class,
            Vec::new(),
            RtTag::Ground(GMode::Top),
            vec![GMode::Missing; n_params],
        ) {
            Ok(r) => r,
            Err(Flow::Error(e)) => return Err(e),
            Err(Flow::Return(_)) => unreachable!("allocation cannot return"),
        };
        match self.invoke(this_ref, main_method, Vec::new(), &[], GMode::Top, None) {
            Ok(v) => Ok(v),
            Err(Flow::Return(v)) => Ok(v),
            Err(Flow::Error(e)) => Err(e),
        }
    }

    #[inline]
    fn gas(&mut self) -> Result<(), Flow> {
        self.stats.steps += 1;
        if self.stats.steps > self.config.gas_limit {
            Err(RtError::OutOfGas.into())
        } else {
            Ok(())
        }
    }

    /// Charges `n` gas at once. Only sound for charges that are
    /// *consecutive* in the tree-walker (nothing observable between them);
    /// the clamp makes the out-of-gas step count identical to charging one
    /// at a time, where the first exceeding charge stops at `limit + 1`.
    #[inline]
    fn gas_n(&mut self, n: u64) -> Result<(), Flow> {
        self.stats.steps += n;
        if self.stats.steps > self.config.gas_limit {
            self.stats.steps = self.config.gas_limit + 1;
            Err(RtError::OutOfGas.into())
        } else {
            Ok(())
        }
    }

    /// Hands out an empty argument vector for a call site, preferring a
    /// recycled register file from [`Self::recycle_locals`] (whose
    /// capacity has already grown to a previous callee's `frame_size`)
    /// over a fresh allocation.
    #[inline]
    pub(crate) fn grab_locals(&mut self, n_args: usize) -> Vec<Value> {
        match self.locals_pool.pop() {
            Some(v) => v,
            // Headroom above the argument count so the callee's register
            // file usually fits without a realloc even on a cold vector.
            None => Vec::with_capacity(n_args.max(16)),
        }
    }

    /// Parks a finished frame's register file for reuse. Values were
    /// already drained or are dropped here; only the allocation survives.
    #[inline]
    fn recycle_locals(&mut self, mut locals: Vec<Value>) {
        // A small cap bounds retained memory; one entry per live call
        // depth is the steady-state need, and deep recursion past the cap
        // simply falls back to fresh allocations.
        if self.locals_pool.len() < 64 {
            locals.clear();
            self.locals_pool.push(locals);
        }
    }

    /// Hands out an empty mode-environment vector, preferring a recycled
    /// one from [`Self::recycle_env`] over a fresh allocation.
    #[inline]
    fn grab_env(&mut self) -> Vec<GMode> {
        self.env_pool.pop().unwrap_or_default()
    }

    /// Parks a finished frame's mode environment for reuse.
    #[inline]
    fn recycle_env(&mut self, mut env: Vec<GMode>) {
        if self.env_pool.len() < 64 {
            env.clear();
            self.env_pool.push(env);
        }
    }

    /// The current energy-decision window: mode-decision inline caches are
    /// keyed by it so they invalidate on window roll. 0 with faults off
    /// (the cached decisions are pure lattice functions of their keys, so
    /// this is a freshness policy, not a correctness requirement).
    fn decision_window(&self) -> u64 {
        match &self.config.faults {
            Some(plan) if self.faults_on && plan.window_s > 0.0 => {
                (self.sim.time_s().max(0.0) / plan.window_s) as u64
            }
            _ => 0,
        }
    }

    /// Executes one lowered body on the configured engine. The bytecode
    /// engine lazily compiles into `cell` (shared program-wide, so batch
    /// runs compile once) and resizes the frame's register file; `n_base`
    /// is the body's parameter count (its fixed leading locals). The
    /// threaded engine additionally consults the cell's hit counter and,
    /// once hot (per [`RuntimeConfig::tier_up`]), compiles the bytecode to
    /// tier-2 threaded code — also cached program-wide — and enters it.
    fn run_body(
        &mut self,
        frame: &mut Frame,
        body: &'p LExpr,
        cell: &'p BodyCell,
        n_base: u32,
    ) -> EvalResult {
        match self.config.engine {
            Engine::Tree => self.eval(frame, body),
            Engine::Bytecode => {
                let code = cell.code_or_compile(body, n_base, &self.prog.ic);
                frame.locals.resize(code.frame_size as usize, Value::Unit);
                self.exec(frame, code)
            }
            Engine::Threaded => {
                let code = cell.code_or_compile(body, n_base, &self.prog.ic);
                frame.locals.resize(code.frame_size as usize, Value::Unit);
                let hot = match self.config.tier_up {
                    TierUp::Never => false,
                    TierUp::Always => true,
                    // The counter is program-wide (shared by concurrent
                    // runs) and drives a perf-only choice, so the benign
                    // count race needs no stronger ordering.
                    TierUp::After(n) => cell.hot_hit() >= n,
                };
                if hot {
                    let mut fresh = false;
                    let tcode = cell.threaded.get_or_init(|| {
                        fresh = true;
                        threaded::compile_threaded(code)
                    });
                    if fresh {
                        self.tier.threaded_compiles += 1;
                    }
                    threaded::enter(self, frame, code, tcode)
                } else {
                    self.exec(frame, code)
                }
            }
        }
    }

    /// The single "virtual time advanced" hook: every interpreter-driven
    /// simulator interaction that moves the clock goes through here, so
    /// cross-cutting observers see one callback instead of scattered call
    /// sites. The simulator's own sampler fires inside `f` at sub-step
    /// resolution; the profiler reads the energy/time delta around it and
    /// charges the innermost frame.
    #[inline]
    fn advance_sim(&mut self, f: impl FnOnce(&mut EnergySim)) {
        match self.profiler.as_mut() {
            // The sampler reads the accumulators only at capture points,
            // so only exact mode pays the delta bookkeeping.
            None | Some(AnyProfiler::Sampled(_)) => f(&mut self.sim),
            Some(AnyProfiler::Exact(p)) => {
                let e0 = self.sim.energy_j();
                let t0 = self.sim.time_s();
                f(&mut self.sim);
                p.charge_sim(self.sim.energy_j() - e0, self.sim.time_s() - t0);
            }
        }
    }

    /// Reads a sensor through the fault layer and the degradation policy.
    /// With faults off this is exactly the historical direct read.
    ///
    /// The degradation ladder: a clean read refreshes last-known-good; a
    /// corrupted read passes through undetected (the runtime cannot tell);
    /// a detectable fault (dropped/stale) serves last-known-good while it
    /// is younger than the staleness bound, and past the bound serves the
    /// conservative sentinel (battery empty / temperature hot) and sets
    /// the `degraded` flag so the surrounding mode decision can substitute
    /// its conservative mode.
    fn read_sensor(&mut self, kind: SensorKind) -> f64 {
        if !self.faults_on {
            return match kind {
                SensorKind::Battery => self.sim.battery_level(),
                SensorKind::Temperature => self.sim.temperature_c(),
            };
        }
        let t = self.sim.time_s();
        let idx = kind.index();
        match self.sim.read_sensor(kind) {
            SensorRead::Clean(v) => {
                self.last_good[idx] = Some((t, v));
                v
            }
            SensorRead::Corrupted(v) => {
                self.stats.sensor_faults += 1;
                self.record_sensor_fault(kind, FaultServe::Corrupted);
                v
            }
            SensorRead::Stale | SensorRead::Dropped => {
                self.stats.sensor_faults += 1;
                match self.last_good[idx] {
                    Some((t0, v)) if t - t0 <= self.config.staleness_bound_s => {
                        self.stats.stale_reads += 1;
                        self.record_sensor_fault(kind, FaultServe::LastKnownGood);
                        v
                    }
                    _ => {
                        self.degraded = true;
                        self.record_sensor_fault(kind, FaultServe::Conservative);
                        match kind {
                            SensorKind::Battery => 0.0,
                            SensorKind::Temperature => 999.0,
                        }
                    }
                }
            }
        }
    }

    fn record_sensor_fault(&mut self, sensor: SensorKind, served: FaultServe) {
        if let Some(c) = self.profiler.as_mut().and_then(AnyProfiler::own) {
            c.sensor_faults += 1;
        }
        if self.config.record_events {
            self.events.push(EnergyEvent {
                at_s: self.sim.time_s(),
                payload: EventPayload::SensorFault { sensor, served },
            });
        }
    }

    /// Deep, heap-resolved rendering of a value (bounded recursion depth
    /// to stay safe on cyclic heaps).
    fn render_deep(&self, v: &Value, depth: usize) -> String {
        if depth > 16 {
            return "…".to_string();
        }
        match v {
            Value::Obj(r) => {
                let data = &self.heap[*r];
                let layout = &self.prog.classes[data.class as usize];
                let mode = match data.mode {
                    RtTag::Dynamic => "?".to_string(),
                    RtTag::Ground(m) => self.prog.mode_disp(m).to_string(),
                };
                let parts: Vec<String> = layout
                    .field_order
                    .iter()
                    .zip(&data.fields)
                    .map(|(n, fv)| format!("{n}={}", self.render_deep(fv, depth + 1)))
                    .collect();
                format!("{}@{mode}{{{}}}", layout.name, parts.join(","))
            }
            Value::MCase(arms) => {
                let parts: Vec<String> = arms
                    .iter()
                    .map(|(m, av)| format!("{m}:{}", self.render_deep(av, depth + 1)))
                    .collect();
                format!("mcase{{{}}}", parts.join(";"))
            }
            Value::Array(items) => {
                let parts: Vec<String> = items
                    .iter()
                    .map(|iv| self.render_deep(iv, depth + 1))
                    .collect();
                format!("[{}]", parts.join(", "))
            }
            other => other.to_string(),
        }
    }

    // ---- modes -----------------------------------------------------------

    /// Resolves a lowered mode expression to a ground mode using the
    /// frame's slot-indexed mode environment.
    fn resolve_mode(&self, frame: &Frame, m: &LMode) -> Result<GMode, Flow> {
        match *m {
            LMode::Ground(g) => Ok(g),
            LMode::Param { slot, var } => match frame.env[slot as usize] {
                GMode::Missing => Err(self.unbound_mode_var(var)),
                g => Ok(g),
            },
            LMode::Unbound(var) => Err(self.unbound_mode_var(var)),
        }
    }

    fn unbound_mode_var(&self, var: u32) -> Flow {
        RtError::Native(format!(
            "unbound mode variable `{}`",
            self.prog.mode_vars.resolve(Symbol::from_raw(var))
        ))
        .into()
    }

    /// Maps an attributor-produced mode name back to its dense id.
    ///
    /// Lowering interns every mode name the program mentions, so the
    /// lookup cannot fail for programs produced by `lower_program`; it is
    /// still surfaced as a structured runtime error rather than a panic so
    /// a hand-assembled or corrupted IR degrades instead of aborting.
    fn mode_const(&self, m: &ModeName) -> Result<GMode, Flow> {
        match self.prog.mode_names.get(m.as_str()) {
            Some(sym) => Ok(GMode::Const(sym.raw())),
            None => {
                Err(RtError::Native(format!("mode `{m}` is not declared by this program")).into())
            }
        }
    }

    // ---- heap -------------------------------------------------------------

    fn allocate(
        &mut self,
        class: u32,
        ctor_vals: Vec<Value>,
        mode: RtTag,
        mode_env: Vec<GMode>,
    ) -> Result<ObjRef, Flow> {
        let prog = self.prog;
        let layout = &prog.classes[class as usize];
        self.stats.allocs += 1;
        if matches!(mode, RtTag::Dynamic) {
            self.stats.dynamic_allocs += 1;
            if self.config.tagging {
                self.advance_sim(|sim| sim.do_work(WorkKind::Cpu, TAG_OVERHEAD_OPS));
            }
            if let Some(c) = self.profiler.as_mut().and_then(AnyProfiler::own) {
                c.dynamic_allocs += 1;
            }
            if self.config.record_events {
                self.events.push(EnergyEvent {
                    at_s: self.sim.time_s(),
                    payload: EventPayload::DynamicAlloc { class },
                });
            }
        }
        let obj_ref = self.heap.len();
        self.heap.push(ObjData {
            class,
            mode,
            mode_env,
            fields: vec![Value::Unit; layout.field_order.len()],
            snapshotted: false,
        });

        // Positional constructor values fill uninitialized fields in
        // declaration order; initializer fields are evaluated afterwards,
        // each in its owning class's context.
        let mut ctor_iter = ctor_vals.into_iter();
        for (slot, name) in &layout.ctor.positional {
            let v = ctor_iter.next().ok_or_else(|| {
                Flow::Error(RtError::Native(format!(
                    "missing constructor argument for field `{name}` of `{}`",
                    layout.name
                )))
            })?;
            self.heap[obj_ref].fields[*slot as usize] = v;
        }
        for job in &layout.ctor.inits {
            let mut env = self.grab_env();
            apply_env_into(&self.heap[obj_ref].mode_env, &job.env_map, &mut env);
            let mode = match self.heap[obj_ref].mode {
                RtTag::Ground(m) => m,
                RtTag::Dynamic => GMode::Top,
            };
            let mut frame = Frame {
                locals: self.grab_locals(0),
                this_ref: Some(obj_ref),
                mode,
                env,
                unbound_lo: u32::MAX,
                n_params: 0,
            };
            let v = self.run_body(&mut frame, &job.body, &job.code, 0)?;
            self.recycle_locals(frame.locals);
            self.recycle_env(frame.env);
            self.heap[obj_ref].fields[job.slot as usize] = v;
        }
        Ok(obj_ref)
    }

    // ---- invocation --------------------------------------------------------

    /// Invokes `recv.method(args)` from a sender executing at
    /// `sender_mode`, enforcing the configured obligation strategy. `ic`
    /// is the send-site inline-cache slot when called from a bytecode call
    /// site (the tree engine passes `None` and always walks the vtable).
    ///
    /// The profiler hook ordering encodes each strategy's blame model.
    /// Guarded: the frame opens *before* the attributor/dfall machinery in
    /// `invoke_prologue`, so attribution charges those to the callee (the
    /// historical behavior, byte-identical). Transient: the prologue —
    /// including the transient call check — runs *before* the frame opens,
    /// so its costs land in the caller's open frame: the check is blamed
    /// on the check site, under both the exact and sampled profilers. In
    /// both orderings the step counter is read before the frame push/pop,
    /// so a pending sample interval lands on the frame that actually
    /// executed it — at identical `(stack, step)` points in both engines,
    /// since the bytecode tier's gas batching is exact at these
    /// boundaries.
    fn invoke(
        &mut self,
        recv: ObjRef,
        method: u32,
        args: Vec<Value>,
        mode_args: &[GMode],
        sender_mode: GMode,
        ic: Option<u32>,
    ) -> EvalResult {
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(RtError::StackOverflow.into());
        }
        let result = match self.config.enforcement {
            Enforcement::Guarded => {
                let entered = match self.profiler.as_mut() {
                    Some(p) => {
                        p.on_enter(self.heap[recv].class, method, self.stats.steps);
                        true
                    }
                    None => false,
                };
                let result =
                    match self.invoke_prologue(recv, method, args, mode_args, sender_mode, ic) {
                        Ok((m, frame)) => self.invoke_body(m, frame),
                        Err(e) => Err(e),
                    };
                if entered {
                    let steps = self.stats.steps;
                    self.profiler
                        .as_mut()
                        .expect("profiler stays on")
                        .on_exit(steps);
                }
                result
            }
            Enforcement::Transient => {
                // A failing prologue returns before the frame ever opens,
                // keeping the shadow stack balanced.
                match self.invoke_prologue(recv, method, args, mode_args, sender_mode, ic) {
                    Ok((m, frame)) => {
                        let entered = match self.profiler.as_mut() {
                            Some(p) => {
                                p.on_enter(self.heap[recv].class, method, self.stats.steps);
                                true
                            }
                            None => false,
                        };
                        let result = self.invoke_body(m, frame);
                        if entered {
                            let steps = self.stats.steps;
                            self.profiler
                                .as_mut()
                                .expect("profiler stays on")
                                .on_exit(steps);
                        }
                        result
                    }
                    Err(e) => Err(e),
                }
            }
        };
        self.depth -= 1;
        result
    }

    /// The enforcement prologue of a send: resolves the method (through
    /// the send IC when bytecode provides one), binds mode parameters,
    /// runs a method-level attributor, and discharges the call-site
    /// obligation via [`Interp::enforce_call`] — everything that happens
    /// before the body runs. Returns the resolved method and its prepared
    /// frame for [`Interp::invoke_body`].
    fn invoke_prologue(
        &mut self,
        recv: ObjRef,
        method: u32,
        args: Vec<Value>,
        mode_args: &[GMode],
        sender_mode: GMode,
        ic: Option<u32>,
    ) -> Result<(&'p LMethod, Frame), Flow> {
        let prog = self.prog;
        let class = self.heap[recv].class;
        let layout = &prog.classes[class as usize];
        // Method ids interned after this class's vtable was sized are names
        // no class declares: `get` correctly reports them absent.
        let lookup = || -> Result<&'p MethodEntry, Flow> {
            match layout.vtable.get(method as usize).and_then(|e| e.as_ref()) {
                Some(e) => Ok(e),
                None => Err(RtError::Native(format!(
                    "class `{}` has no method `{}`",
                    layout.name,
                    prog.method_names.resolve(Symbol::from_raw(method))
                ))
                .into()),
            }
        };
        // Monomorphic send-site inline cache: a receiver-class guard in
        // front of the vtable walk (each bytecode call site targets one
        // method id, so the class alone keys the entry).
        let entry: &'p MethodEntry = match ic {
            Some(site) => {
                let site = site as usize;
                if self.ic_send.len() <= site {
                    self.ic_send.resize(site + 1, None);
                }
                match self.ic_send[site] {
                    Some((c, e)) if c == class => e,
                    _ => {
                        let e = lookup()?;
                        self.ic_send[site] = Some((class, e));
                        e
                    }
                }
            }
            None => lookup()?,
        };
        let m: &'p LMethod = &entry.method;
        let mut env = self.grab_env();
        apply_env_into(&self.heap[recv].mode_env, &entry.env_map, &mut env);
        let n0 = env.len();

        // Bind generic method-mode parameters: explicit arguments first,
        // then defaults (a shadowed owner binding, or unbound).
        for (k, p) in m.mode_params.iter().enumerate() {
            let g = match mode_args.get(k) {
                Some(&g) => g,
                None => match p.default {
                    MDefault::FromSlot(j) => env[j as usize],
                    MDefault::Missing => GMode::Missing,
                },
            };
            env.push(g);
        }

        // The frame's locals are built once and reused by the attributor
        // frame below (the attributor leaves the slot layout balanced), so
        // attributed sends never clone argument values or environments.
        let (mut locals, unbound_lo) = make_locals(args, m.n_params);

        // Receiver-side mode for dfall: the object's tag, overridden by a
        // method-level mode or attributor.
        let receiver_mode = if let Some(attr_body) = &m.attributor {
            // Method-level attributor: evaluate it now to characterize
            // this invocation.
            let mut aframe = Frame {
                locals,
                this_ref: Some(recv),
                mode: sender_mode,
                env,
                unbound_lo,
                n_params: m.n_params,
            };
            // Sensor reads inside the attributor may degrade past the
            // staleness bound; the flag is scoped to this one decision
            // (saved/restored around it so an outer decision in progress
            // keeps its own view).
            let outer_degraded = self.degraded;
            self.degraded = false;
            let attributed =
                self.eval_attributor_body(&mut aframe, attr_body, &m.attr_code, m.n_params)?;
            // Reclaim the frame pieces: the tree engine's block scoping
            // leaves exactly the parameters; the bytecode engine may have
            // grown the register file, truncated back here.
            locals = aframe.locals;
            locals.truncate(m.n_params as usize);
            env = aframe.env;
            let produced = if self.degraded {
                // Degraded decision: fall back to the sender's mode — the
                // conservative choice that always satisfies the waterfall
                // invariant (a lower mode is never forced upward).
                self.stats.degraded_decisions += 1;
                sender_mode
            } else {
                attributed
            };
            self.degraded = outer_degraded;
            // The method's internal view (its first declared mode
            // parameter, if any) is bound to the attributed mode.
            if !m.mode_params.is_empty() {
                env[n0] = produced;
            }
            Some(produced)
        } else if let Some(ov) = m.mode_override {
            // Method-level static override, resolved in the owner's env.
            Some(match ov {
                LOverride::Ground(g) => g,
                LOverride::Param { slot, var } => match env[slot as usize] {
                    GMode::Missing => GMode::Var(var),
                    g => g,
                },
            })
        } else {
            self.heap[recv].mode.ground()
        };

        // The call-site obligation: the configured strategy validates the
        // receiver mode against the sender's and yields the frame's mode.
        let frame_mode = self.enforce_call(class, method, receiver_mode, sender_mode)?;

        Ok((
            m,
            Frame {
                locals,
                this_ref: Some(recv),
                mode: frame_mode,
                env,
                unbound_lo,
                n_params: m.n_params,
            },
        ))
    }

    /// Evaluates an attributor body to a mode constant.
    fn eval_attributor_body(
        &mut self,
        frame: &mut Frame,
        body: &'p LExpr,
        cell: &'p BodyCell,
        n_base: u32,
    ) -> Result<GMode, Flow> {
        let v = match self.run_body(frame, body, cell, n_base) {
            Ok(v) => v,
            Err(Flow::Return(v)) => v,
            Err(e) => return Err(e),
        };
        match v {
            Value::Mode(m) => self.mode_const(&m),
            other => Err(RtError::Native(format!(
                "attributor returned a {} instead of a mode",
                other.kind()
            ))
            .into()),
        }
    }

    // ---- snapshot ------------------------------------------------------------

    /// The paper's snapshot/check reduction: evaluate the attributor, check
    /// the bounds, produce a statically-moded (lazily copied) object. `ic`
    /// is a bytecode snapshot site's verdict-cache slot (`None` from the
    /// tree engine); the attributor — with its sensor reads, fault
    /// degradation, events, and profiler charges — runs on every
    /// evaluation regardless.
    fn snapshot(
        &mut self,
        frame: &Frame,
        obj: ObjRef,
        lo: &LMode,
        hi: &LMode,
        ic: Option<u32>,
    ) -> EvalResult {
        let prog = self.prog;
        self.stats.snapshots += 1;
        // Under transient, the boundary's bounds check is itself one of the
        // strategy's first-order checks.
        if matches!(self.config.enforcement, Enforcement::Transient) {
            self.stats.transient_checks += 1;
        }
        if self.config.tagging {
            self.advance_sim(|sim| sim.do_work(WorkKind::Cpu, SNAPSHOT_OVERHEAD_OPS));
        }
        if let Some(c) = self.profiler.as_mut().and_then(AnyProfiler::own) {
            c.snapshots += 1;
        }
        let class = self.heap[obj].class;
        let layout = &prog.classes[class as usize];
        let Some(attributor) = &layout.attributor else {
            return Err(RtError::Native(format!(
                "class `{}` has no attributor; only dynamic objects can be snapshotted",
                layout.name
            ))
            .into());
        };
        let mut env = self.grab_env();
        env.extend_from_slice(&self.heap[obj].mode_env);
        let mut aframe = Frame {
            locals: self.grab_locals(0),
            this_ref: Some(obj),
            mode: frame.mode,
            env,
            unbound_lo: u32::MAX,
            n_params: 0,
        };
        // Scope the degradation flag to this snapshot's attributor run
        // (nested snapshots inside the attributor manage their own).
        let outer_degraded = self.degraded;
        self.degraded = false;
        let attributed =
            self.eval_attributor_body(&mut aframe, &attributor.body, &attributor.code, 0)?;
        let attr_degraded = self.degraded;
        self.degraded = outer_degraded;
        self.recycle_locals(aframe.locals);
        self.recycle_env(aframe.env);

        // check(m, m1, m2, o): bad check throws the catchable
        // EnergyException unless running silent.
        let lo = self.resolve_mode(frame, lo)?;
        let hi = self.resolve_mode(frame, hi)?;
        // Degraded decision: the attributor ran on sentinel sensor data, so
        // its answer is untrustworthy — substitute the snapshot's declared
        // conservative `lo` mode, which by construction passes the check.
        let mode = if attr_degraded {
            self.stats.degraded_decisions += 1;
            lo
        } else {
            attributed
        };
        // The bounds verdict is a pure lattice function of the key below;
        // bytecode sites memoize it per energy window.
        let failed = match ic {
            Some(site) => {
                let window = self.decision_window();
                let site = site as usize;
                if self.ic_snap.len() <= site {
                    self.ic_snap.resize(site + 1, None);
                }
                match self.ic_snap[site] {
                    Some(c)
                        if c.class == class
                            && c.mode == mode
                            && c.lo == lo
                            && c.hi == hi
                            && c.window == window =>
                    {
                        c.failed
                    }
                    _ => {
                        let failed = !(prog.le(lo, mode) && prog.le(mode, hi));
                        self.ic_snap[site] = Some(vm::SnapIc {
                            class,
                            mode,
                            lo,
                            hi,
                            window,
                            failed,
                        });
                        failed
                    }
                }
            }
            None => !(prog.le(lo, mode) && prog.le(mode, hi)),
        };
        // Whether the commit below will physically copy: only guarded's
        // lazy-copy discipline ever does; transient re-tags in place.
        let will_copy = match self.config.enforcement {
            Enforcement::Guarded => self.heap[obj].snapshotted || self.config.eager_copy,
            Enforcement::Transient => false,
        };
        if self.config.record_events {
            self.events.push(EnergyEvent {
                at_s: self.sim.time_s(),
                payload: EventPayload::Snapshot {
                    class,
                    mode,
                    lo,
                    hi,
                    copied: !failed && will_copy,
                    failed,
                },
            });
        }
        if failed {
            self.enforce_snapshot_failure(class, mode, lo, hi)?;
        }

        // Bind the class's internal mode parameter (slot 0) to the
        // produced mode; the configured strategy commits the view.
        let has_internal = attributor.has_internal;
        self.enforce_snapshot_commit(obj, mode, has_internal)
    }

    // ---- mode cases -------------------------------------------------------------

    /// Eliminates a mode case at a target mode: the arm whose mode is the
    /// largest at or below the target.
    fn eliminate(&self, arms: &[(ModeName, Value)], target: GMode) -> Result<Value, Flow> {
        self.eliminate_idx(arms, target).map(|(_, v)| v)
    }

    /// [`Interp::eliminate`], also reporting *which* arm was selected so
    /// bytecode elimination sites can cache the index. Every arm's mode is
    /// resolved (undeclared arm modes error even when a better arm was
    /// already found), exactly as before. The selected value's clone is a
    /// refcount bump for all heap-backed variants.
    fn eliminate_idx(
        &self,
        arms: &[(ModeName, Value)],
        target: GMode,
    ) -> Result<(u32, Value), Flow> {
        let prog = self.prog;
        let mut best: Option<(GMode, u32)> = None;
        for (i, (m, _)) in arms.iter().enumerate() {
            let am = self.mode_const(m)?;
            if prog.le(am, target) {
                let better = match best {
                    None => true,
                    Some((bm, _)) => prog.le(bm, am),
                };
                if better {
                    best = Some((am, i as u32));
                }
            }
        }
        match best {
            Some((_, i)) => Ok((i, arms[i as usize].1.clone())),
            None => Err(RtError::NoSuchArm(format!(
                "no mode case arm at or below `{}`",
                prog.mode_disp(target)
            ))
            .into()),
        }
    }

    /// Auto-eliminates a value if it is a mode case flowing into a
    /// primitive position (the implicit projection of the paper's concrete
    /// syntax).
    #[inline]
    fn force(&self, frame: &Frame, v: Value) -> Result<Value, Flow> {
        match v {
            Value::MCase(arms) => self.eliminate(&arms, frame.mode),
            other => Ok(other),
        }
    }

    // ---- evaluation ---------------------------------------------------------------

    fn eval(&mut self, frame: &mut Frame, e: &'p LExpr) -> EvalResult {
        self.gas()?;
        match e {
            LExpr::Lit(v) => Ok(v.clone()),
            LExpr::ModeConst(m) => Ok(Value::Mode(m.clone())),
            LExpr::This => match frame.this_ref {
                Some(r) => Ok(Value::Obj(r)),
                None => Err(RtError::Native("`this` outside an object context".into()).into()),
            },
            LExpr::Var { slot, name } => {
                if *slot >= frame.unbound_lo && *slot < frame.n_params {
                    return Err(RtError::Native(format!("unbound variable `{name}`")).into());
                }
                match frame.locals.get(*slot as usize) {
                    Some(v) => Ok(v.clone()),
                    None => Err(RtError::Native(format!("unbound variable `{name}`")).into()),
                }
            }
            LExpr::UnboundVar(name) => {
                Err(RtError::Native(format!("unbound variable `{name}`")).into())
            }
            LExpr::Field { recv, field, name } => {
                let rv = self.eval(frame, recv)?;
                let Value::Obj(r) = rv else {
                    return Err(RtError::Native(format!("field access on a {}", rv.kind())).into());
                };
                self.read_field(frame, r, *field, name)
            }
            LExpr::New {
                class,
                plan,
                ctor_args,
            } => {
                let mut vals = Vec::with_capacity(ctor_args.len());
                for a in ctor_args {
                    vals.push(self.eval(frame, a)?);
                }
                let (mode, env) = self.resolve_new(frame, *class, plan)?;
                let r = self.allocate(*class, vals, mode, env)?;
                Ok(Value::Obj(r))
            }
            LExpr::NewUnknown { class, ctor_args } => {
                for a in ctor_args {
                    self.eval(frame, a)?;
                }
                Err(RtError::Native(format!("unknown class `{class}`")).into())
            }
            LExpr::Call {
                recv,
                method,
                mode_args,
                args,
            } => {
                let rv = self.eval(frame, recv)?;
                let Value::Obj(r) = rv else {
                    return Err(RtError::Native(format!("method call on a {}", rv.kind())).into());
                };
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(frame, a)?);
                }
                let mut gmodes = Vec::with_capacity(mode_args.len());
                for m in mode_args {
                    gmodes.push(self.resolve_mode(frame, m)?);
                }
                self.invoke(r, *method, vals, &gmodes, frame.mode, None)
            }
            LExpr::Builtin { op, ns, name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let v = self.eval(frame, a)?;
                    vals.push(self.force(frame, v)?);
                }
                self.builtin(*op, ns, name, vals)
            }
            LExpr::Cast { check, expr } => {
                let v = self.eval(frame, expr)?;
                // Only object downcasts can fail at run time.
                self.check_cast(&v, check)?;
                Ok(v)
            }
            LExpr::Snapshot { expr, lo, hi } => {
                let v = self.eval(frame, expr)?;
                let Value::Obj(r) = v else {
                    return Err(RtError::Native(format!("snapshot of a {}", v.kind())).into());
                };
                self.snapshot(frame, r, lo, hi, None)
            }
            LExpr::MCase(arms) => {
                let mut vals = Vec::with_capacity(arms.len());
                for (m, arm) in arms {
                    vals.push((m.clone(), self.eval(frame, arm)?));
                }
                Ok(Value::MCase(Arc::new(vals)))
            }
            LExpr::Elim { expr, mode } => {
                let v = self.eval(frame, expr)?;
                let Value::MCase(arms) = v else {
                    return Err(RtError::Native(format!("`<|` on a {}", v.kind())).into());
                };
                let target = match mode {
                    Some(m) => self.resolve_mode(frame, m)?,
                    None => frame.mode,
                };
                self.eliminate(&arms, target)
            }
            LExpr::Binary { op, lhs, rhs } => self.binary(frame, *op, lhs, rhs),
            LExpr::Unary { op, expr } => {
                let v = self.eval(frame, expr)?;
                let v = self.force(frame, v)?;
                Self::apply_unop(*op, v)
            }
            LExpr::If { cond, then, els } => {
                let c = self.eval(frame, cond)?;
                let c = self.force(frame, c)?;
                let Value::Bool(b) = c else {
                    return Err(RtError::Native(format!("if condition is a {}", c.kind())).into());
                };
                if b {
                    self.eval(frame, then)
                } else {
                    match els {
                        Some(els) => self.eval(frame, els),
                        None => Ok(Value::Unit),
                    }
                }
            }
            LExpr::Block(stmts) => {
                let depth = frame.locals.len();
                let mut last = Value::Unit;
                for stmt in stmts {
                    match stmt {
                        LStmt::Let(value) => {
                            let v = self.eval(frame, value)?;
                            frame.locals.push(v);
                            last = Value::Unit;
                        }
                        LStmt::Expr(e) => {
                            last = self.eval(frame, e)?;
                        }
                        LStmt::Return(e) => {
                            let v = self.eval(frame, e)?;
                            frame.locals.truncate(depth);
                            return Err(Flow::Return(v));
                        }
                    }
                }
                frame.locals.truncate(depth);
                Ok(last)
            }
            LExpr::Try { body, handler } => {
                // A failing body may leave partially-pushed block locals on
                // the frame; restore the handler's lowered slot layout.
                let depth = frame.locals.len();
                match self.eval(frame, body) {
                    Err(Flow::Error(RtError::EnergyException(_))) => {
                        frame.locals.truncate(depth);
                        self.eval(frame, handler)
                    }
                    other => other,
                }
            }
            LExpr::ArrayLit(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for item in items {
                    vals.push(self.eval(frame, item)?);
                }
                Ok(Value::Array(Arc::new(vals)))
            }
        }
    }

    fn binary(
        &mut self,
        frame: &mut Frame,
        op: BinOp,
        lhs: &'p LExpr,
        rhs: &'p LExpr,
    ) -> EvalResult {
        // Short-circuit && / ||.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval(frame, lhs)?;
            let l = self.force(frame, l)?;
            let Value::Bool(lb) = l else {
                return Err(RtError::Native(format!("`{op}` on a {}", l.kind())).into());
            };
            if (op == BinOp::And && !lb) || (op == BinOp::Or && lb) {
                return Ok(Value::Bool(lb));
            }
            let r = self.eval(frame, rhs)?;
            let r = self.force(frame, r)?;
            let Value::Bool(rb) = r else {
                return Err(RtError::Native(format!("`{op}` on a {}", r.kind())).into());
            };
            return Ok(Value::Bool(rb));
        }

        let l = self.eval(frame, lhs)?;
        let l = self.force(frame, l)?;
        let r = self.eval(frame, rhs)?;
        let r = self.force(frame, r)?;
        self.apply_binop(op, &l, &r)
    }

    /// Applies a (non-short-circuit) binary operator to forced operands —
    /// the shared arithmetic/comparison core of both engines.
    fn apply_binop(&self, op: BinOp, l: &Value, r: &Value) -> EvalResult {
        use BinOp::*;
        let err = |l: &Value, r: &Value| -> Flow {
            RtError::Native(format!(
                "cannot apply `{op}` to {} and {}",
                l.kind(),
                r.kind()
            ))
            .into()
        };
        match (op, l, r) {
            (Add, Value::Str(a), b) => Ok(Value::str(format!("{a}{}", b.display_string()))),
            (Add, a, Value::Str(b)) => Ok(Value::str(format!("{}{b}", a.display_string()))),
            (Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
            (Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
            (Div, Value::Int(_), Value::Int(0)) => {
                Err(RtError::Native("division by zero".into()).into())
            }
            (Div, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_div(*b))),
            (Rem, Value::Int(_), Value::Int(0)) => {
                Err(RtError::Native("remainder by zero".into()).into())
            }
            (Rem, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_rem(*b))),
            (Add, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a + b)),
            (Sub, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a - b)),
            (Mul, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a * b)),
            (Div, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a / b)),
            (Rem, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a % b)),
            (Lt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a < b)),
            (Le, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a <= b)),
            (Gt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a > b)),
            (Ge, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a >= b)),
            (Lt, Value::Double(a), Value::Double(b)) => Ok(Value::Bool(a < b)),
            (Le, Value::Double(a), Value::Double(b)) => Ok(Value::Bool(a <= b)),
            (Gt, Value::Double(a), Value::Double(b)) => Ok(Value::Bool(a > b)),
            (Ge, Value::Double(a), Value::Double(b)) => Ok(Value::Bool(a >= b)),
            (Eq, a, b) => Ok(Value::Bool(a == b)),
            (Ne, a, b) => Ok(Value::Bool(a != b)),
            _ => Err(err(l, r)),
        }
    }

    // ---- builtins --------------------------------------------------------------

    fn builtin(
        &mut self,
        op: BOp,
        ns: &ent_syntax::Ident,
        name: &ent_syntax::Ident,
        mut args: Vec<Value>,
    ) -> EvalResult {
        self.builtin_slice(op, ns, name, &mut args)
    }

    /// The slice-based builtin core: callers keep ownership of the
    /// argument storage (the threaded tier recycles a pooled register
    /// file through it; the VM path funnels in via [`Self::builtin`]).
    /// Arms that need owned values take them out of the slice, leaving
    /// `Unit` — indistinguishable from the by-value form since the
    /// caller drops or clears the storage without reading it back.
    fn builtin_slice(
        &mut self,
        op: BOp,
        ns: &ent_syntax::Ident,
        name: &ent_syntax::Ident,
        args: &mut [Value],
    ) -> EvalResult {
        let native = |msg: String| -> Flow { RtError::Native(msg).into() };
        // Growth builtins take their array argument by value: when the `Arc`
        // is the last reference (the common `a = Arr.push(a, x);` loop shape
        // once the caller's register has been drained) the buffer is reused
        // in place instead of re-copying the spine every iteration.
        match (op, &*args) {
            (BOp::ArrPush, [Value::Array(_), _]) => {
                let Value::Array(a) = std::mem::replace(&mut args[0], Value::Unit) else {
                    unreachable!("shape checked above")
                };
                let v = std::mem::replace(&mut args[1], Value::Unit);
                let mut out = Arc::try_unwrap(a).unwrap_or_else(|a| a.to_vec());
                out.push(v);
                return Ok(Value::Array(Arc::new(out)));
            }
            (BOp::ArrConcat, [Value::Array(_), Value::Array(_)]) => {
                let Value::Array(a) = std::mem::replace(&mut args[0], Value::Unit) else {
                    unreachable!("shape checked above")
                };
                let Value::Array(b) = std::mem::replace(&mut args[1], Value::Unit) else {
                    unreachable!("shape checked above")
                };
                let mut out = Arc::try_unwrap(a).unwrap_or_else(|a| a.to_vec());
                out.extend(b.iter().cloned());
                return Ok(Value::Array(Arc::new(out)));
            }
            _ => {}
        }
        match (op, &*args) {
            (BOp::ExtBattery, []) => Ok(Value::Double(self.read_sensor(SensorKind::Battery))),
            (BOp::ExtTemperature, []) => {
                Ok(Value::Double(self.read_sensor(SensorKind::Temperature)))
            }
            (BOp::ExtTimeMs, []) => Ok(Value::Double(self.sim.time_s() * 1000.0)),
            (BOp::SimWork, [Value::Str(kind), Value::Double(units)]) => {
                let (kind, units) = (WorkKind::parse(kind), *units);
                self.advance_sim(|sim| sim.do_work(kind, units));
                Ok(Value::Unit)
            }
            (BOp::SimSleepMs, [Value::Int(ms)]) => {
                let ms = *ms as f64;
                self.advance_sim(|sim| sim.sleep_ms(ms));
                Ok(Value::Unit)
            }
            (BOp::SimRand, []) => Ok(Value::Double(self.sim.rand())),
            (BOp::IoPrint, [v]) => {
                self.output.push(v.display_string());
                Ok(Value::Unit)
            }
            (BOp::StrLen, [Value::Str(s)]) => Ok(Value::Int(s.chars().count() as i64)),
            (BOp::StrOfInt, [Value::Int(n)]) => Ok(Value::str(n.to_string())),
            (BOp::StrOfDouble, [Value::Double(x)]) => Ok(Value::str(format!("{x}"))),
            (BOp::StrSub, [Value::Str(s), Value::Int(a), Value::Int(b)]) => {
                let chars: Vec<char> = s.chars().collect();
                let a = (*a).clamp(0, chars.len() as i64) as usize;
                let b = (*b).clamp(a as i64, chars.len() as i64) as usize;
                Ok(Value::str(chars[a..b].iter().collect::<String>()))
            }
            (BOp::MathFloor, [Value::Double(x)]) => Ok(Value::Int(x.floor() as i64)),
            (BOp::MathToDouble, [Value::Int(n)]) => Ok(Value::Double(*n as f64)),
            (BOp::MathMin, [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.min(b))),
            (BOp::MathMax, [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.max(b))),
            (BOp::MathFmin, [Value::Double(a), Value::Double(b)]) => Ok(Value::Double(a.min(*b))),
            (BOp::MathFmax, [Value::Double(a), Value::Double(b)]) => Ok(Value::Double(a.max(*b))),
            // Wrapping on i64::MIN, consistent with the arithmetic ops.
            (BOp::MathAbs, [Value::Int(n)]) => Ok(Value::Int(n.wrapping_abs())),
            (BOp::MathSqrt, [Value::Double(x)]) => Ok(Value::Double(x.sqrt())),
            (BOp::MathPow, [Value::Double(a), Value::Double(b)]) => Ok(Value::Double(a.powf(*b))),
            (BOp::ArrRange, [Value::Int(a), Value::Int(b)]) => {
                let len = (*b as i128 - *a as i128).max(0);
                if len > MAX_ARRAY_LEN as i128 {
                    return Err(native(format!(
                        "Arr.range of {len} elements exceeds the limit of {MAX_ARRAY_LEN}"
                    )));
                }
                let items: Vec<Value> = (*a..*b).map(Value::Int).collect();
                Ok(Value::Array(Arc::new(items)))
            }
            (BOp::ArrLen, [Value::Array(items)]) => Ok(Value::Int(items.len() as i64)),
            (BOp::ArrGet, [Value::Array(items), Value::Int(i)]) => {
                items.get(*i as usize).cloned().ok_or_else(|| {
                    native(format!(
                        "array index {i} out of bounds (len {})",
                        items.len()
                    ))
                })
            }
            (BOp::ArrSub, [Value::Array(items), Value::Int(a), Value::Int(b)]) => {
                let a = (*a).clamp(0, items.len() as i64) as usize;
                let b = (*b).clamp(a as i64, items.len() as i64) as usize;
                Ok(Value::Array(Arc::new(items[a..b].to_vec())))
            }
            (BOp::ArrMake, [Value::Int(n), v]) => {
                let n = (*n).max(0);
                if n > MAX_ARRAY_LEN {
                    return Err(native(format!(
                        "Arr.make of {n} elements exceeds the limit of {MAX_ARRAY_LEN}"
                    )));
                }
                Ok(Value::Array(Arc::new(vec![v.clone(); n as usize])))
            }
            _ => Err(native(format!(
                "unknown or misapplied builtin `{ns}.{name}` with {} args",
                args.len()
            ))),
        }
    }
}

// The clone audit (DESIGN.md §11): hot-loop value movement must be refcount
// bumps on the shared `Arc`, never deep copies of the payload. These tests
// pin that for array indexing, mode-case arm selection, and the unique-`Arc`
// buffer reuse in `Arr.push`.
#[cfg(test)]
mod clone_audit {
    use super::*;

    fn with_interp<R>(src: &str, f: impl for<'p> FnOnce(&mut Interp<'p>) -> R) -> R {
        let compiled = ent_core::compile(src).unwrap();
        let lowered = lower_program(&compiled);
        let config = RuntimeConfig::default();
        let sim = EnergySim::new(Platform::system_a(), config.seed);
        let mut interp = Interp {
            prog: &lowered,
            heap: Vec::new(),
            sim,
            output: Vec::new(),
            stats: RunStats::default(),
            depth: 0,
            max_depth: MAX_CALL_DEPTH,
            events: EventRing::default(),
            profiler: None,
            faults_on: false,
            last_good: [None; 2],
            degraded: false,
            locals_pool: Vec::new(),
            env_pool: Vec::new(),
            ic_send: Vec::new(),
            ic_arm: Vec::new(),
            ic_snap: Vec::new(),
            ic_poly: Vec::new(),
            tier: TierStats::default(),
            config,
        };
        f(&mut interp)
    }

    const MODES_MAIN: &str = "modes { low <= high; } class Main { int main() { return 0; } }";

    #[test]
    fn array_get_is_refcount_bump() {
        with_interp(MODES_MAIN, |it| {
            let inner: Arc<Vec<Value>> = Arc::new(vec![Value::Int(7)]);
            let items = Arc::new(vec![Value::Array(inner.clone()), Value::Int(2)]);
            let got = it
                .builtin(
                    BOp::ArrGet,
                    &"Arr".into(),
                    &"get".into(),
                    vec![Value::Array(items.clone()), Value::Int(0)],
                )
                .unwrap();
            // The element clone shares the payload: original + `items[0]` +
            // the returned value; the outer array is back to one owner (the
            // argument vector was dropped inside the call).
            assert_eq!(Arc::strong_count(&inner), 3);
            assert_eq!(Arc::strong_count(&items), 1);
            let Value::Array(got) = got else {
                panic!("expected array element")
            };
            assert!(Arc::ptr_eq(&got, &inner));
        });
    }

    #[test]
    fn eliminate_arm_is_refcount_bump() {
        with_interp(MODES_MAIN, |it| {
            let payload: Arc<Vec<Value>> = Arc::new(vec![Value::Int(1), Value::Int(2)]);
            let arms = vec![
                (ModeName::new("low"), Value::Array(payload.clone())),
                (ModeName::new("high"), Value::Int(0)),
            ];
            let target = it.mode_const(&ModeName::new("low")).unwrap();
            let (idx, v) = it.eliminate_idx(&arms, target).unwrap();
            assert_eq!(idx, 0);
            // original + the arm entry + the selected value — no deep copy.
            assert_eq!(Arc::strong_count(&payload), 3);
            let Value::Array(v) = v else {
                panic!("expected array arm")
            };
            assert!(Arc::ptr_eq(&v, &payload));
        });
    }

    #[test]
    fn arr_push_reuses_unique_buffer() {
        with_interp(MODES_MAIN, |it| {
            let mut v = Vec::with_capacity(8);
            v.extend([Value::Int(1), Value::Int(2)]);
            let buf = v.as_ptr();
            let out = it
                .builtin(
                    BOp::ArrPush,
                    &"Arr".into(),
                    &"push".into(),
                    vec![Value::Array(Arc::new(v)), Value::Int(3)],
                )
                .unwrap();
            let Value::Array(out) = out else {
                panic!("expected array")
            };
            assert_eq!(out.len(), 3);
            // The uniquely-owned buffer was grown in place, not re-copied.
            assert_eq!(out.as_ptr(), buf);
        });
    }

    #[test]
    fn arr_push_copies_shared_buffer() {
        with_interp(MODES_MAIN, |it| {
            let shared = Arc::new(vec![Value::Int(1)]);
            let out = it
                .builtin(
                    BOp::ArrPush,
                    &"Arr".into(),
                    &"push".into(),
                    vec![Value::Array(shared.clone()), Value::Int(2)],
                )
                .unwrap();
            // The shared original is untouched.
            assert_eq!(shared.len(), 1);
            assert_eq!(Arc::strong_count(&shared), 1);
            let Value::Array(out) = out else {
                panic!("expected array")
            };
            assert_eq!(out.len(), 2);
        });
    }
}
