//! The ENT runtime: an interpreter implementing the paper's operational
//! semantics (§4.2) against the simulated energy platforms.
//!
//! Dynamic objects carry mode tags; `snapshot` evaluates attributors,
//! checks bounds (raising the catchable `EnergyException` on a bad check),
//! and applies the paper's lazy shallow-copy semantics; every message send
//! re-validates the dynamic waterfall invariant `dfall` — which, per the
//! paper's Corollary 1, never fails for well-typed programs.
//!
//! Programs are lowered once at load time to an indexed IR (interned
//! symbols, frame-slot variables, per-class field slots, vtable dispatch,
//! slot-indexed mode environments) that the interpreter executes directly;
//! [`run`] lowers and runs in one call, while [`lower_program`] +
//! [`run_lowered`] amortize lowering across repeated runs.
//!
//! # Example
//!
//! ```
//! use ent_core::compile;
//! use ent_energy::Platform;
//! use ent_runtime::{run, RuntimeConfig, Value};
//!
//! let compiled = compile(
//!     "modes { low <= high; }
//!      class Worker@mode<? <= W> {
//!        attributor {
//!          if (Ext.battery() >= 0.5) { return high; } else { return low; }
//!        }
//!        int work(int n) { Sim.work(\"cpu\", 1000.0); return n * 2; }
//!      }
//!      class Main {
//!        int main() {
//!          let dw = new Worker();
//!          let Worker w = snapshot dw [_, _];
//!          return w.work(21);
//!        }
//!      }",
//! ).unwrap();
//! let result = run(&compiled, Platform::system_a(), RuntimeConfig::default());
//! assert_eq!(result.value.unwrap(), Value::Int(42));
//! assert!(result.measurement.energy_j > 0.0);
//! ```

pub mod adapt;
mod compile;
mod error;
mod events;
pub mod formal;
mod interp;
mod lower;
mod profile;
mod stack;
mod telemetry;
mod value;

pub use adapt::{AdaptConfig, AdaptMode, AtomicConfig};
pub use error::{Flow, RtError};
pub use events::{render_event, EnergyEvent, EventPayload, EventRing, FaultServe};
pub use interp::{
    run, run_lowered, DeoptReason, Enforcement, Engine, RunResult, RunStats, RuntimeConfig,
    TierStats, TierUp, DEFAULT_TIER_UP_THRESHOLD,
};
pub use lower::{lower_program, GMode, LoweredProgram};
pub use profile::{
    Costs, MethodProfile, Profile, ProfileMode, ProfileReport, SampledMethod, SampledProfile,
};
pub use stack::{default_stack_size, parse_stack_size, with_interp_stack, BUILTIN_STACK_SIZE};
pub use telemetry::{json_escape, json_f64, json_is_valid};
pub use value::{ObjRef, RtMode, Value};
