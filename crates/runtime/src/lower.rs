//! Lowering: compiles a type-checked [`CompiledProgram`] into an indexed
//! runtime IR the interpreter executes directly.
//!
//! The surface AST names everything by string — variables, fields, methods,
//! mode constants, mode variables — and the original evaluator resolved
//! those names at every step: a reverse scan over `(Ident, Value)` locals
//! per variable read, a field-name position scan per field access, a
//! `(ClassName, Ident)`-keyed hash lookup per send, and a cloned
//! `HashMap<ModeVar, StaticMode>` per call frame. This module performs all
//! of that resolution once, at load time:
//!
//! * Every name is interned to a dense `u32` (see [`ent_syntax::intern`]).
//! * Variables become frame-slot indices ([`LExpr::Var`]); frames hold a
//!   flat `Vec<Value>` scoped by push/truncate.
//! * Field accesses become per-class slot offsets resolved through a
//!   field-id-indexed table ([`ClassLayout::field_slot`]).
//! * Sends index a per-class vtable of pre-resolved [`MethodEntry`]s.
//! * Mode environments become small `Vec<GMode>`s addressed by slot, with
//!   each (class, ancestor) environment projection pre-compiled into an
//!   [`EnvSrc`] map.
//!
//! Lowering is semantics-preserving bit for bit: the interpreter over this
//! IR produces identical [`crate::RunStats`], output, value renderings and
//! energy measurements for fixed seeds (enforced by the golden suite in
//! `tests/formal_equivalence.rs` and the perf harness's fingerprints).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use ent_core::CompiledProgram;
use ent_modes::{Mode, ModeVar, StaticMode};
use ent_syntax::{
    BinOp, ClassName, ClassTable, Expr, ExprKind, Ident, Interner, Lit, MethodDecl, Stmt, Type,
    UnOp,
};

use crate::value::Value;

/// A ground-ish runtime mode: the `Copy` mirror of [`StaticMode`] with
/// interned ids, plus [`GMode::Missing`] — the slot value standing in for
/// "this mode variable has no binding" (the old evaluator's absent hash-map
/// key).
///
/// Public because compact [`crate::EnergyEvent`]s carry modes in this
/// interned form; resolve one back to its display name with
/// [`LoweredProgram::mode_string`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GMode {
    /// `⊥`.
    Bot,
    /// `⊤`.
    Top,
    /// A mode constant, by id in [`LoweredProgram::mode_names`].
    Const(u32),
    /// An unresolved mode variable, by id in [`LoweredProgram::mode_vars`]
    /// (threads through superclass instantiations exactly as the old
    /// evaluator kept `StaticMode::Var` values in its environments).
    Var(u32),
    /// No binding. Reading it through [`LMode::Param`] raises the
    /// "unbound mode variable" error the absent hash-map key used to.
    Missing,
}

/// A static mode expression as it appears in lowered code: either already
/// ground, or a read of a frame mode-environment slot.
#[derive(Clone, Copy, Debug)]
pub(crate) enum LMode {
    /// Resolves to itself.
    Ground(GMode),
    /// Reads `frame.env[slot]`; errors on [`GMode::Missing`] naming `var`.
    Param { slot: u32, var: u32 },
    /// A variable not in scope at lowering time: always errors.
    Unbound(u32),
}

/// A method-level `@mode<η>` override. Unlike [`LMode`], an unbound
/// variable here falls back to the symbolic variable itself (the old
/// evaluator's `unwrap_or_else(|| m.clone())`), it does not error.
#[derive(Clone, Copy, Debug)]
pub(crate) enum LOverride {
    Ground(GMode),
    /// Reads `frame.env[slot]`; [`GMode::Missing`] falls back to
    /// `GMode::Var(var)`.
    Param {
        slot: u32,
        var: u32,
    },
}

/// One slot of a pre-compiled environment projection: how to produce an
/// ancestor-owner's mode-parameter binding from the receiver object's own
/// environment. Compiled once per (class, owner) pair by a symbolic walk of
/// the superclass instantiations.
#[derive(Clone, Copy, Debug)]
pub(crate) enum EnvSrc {
    /// The object's own slot `i`, verbatim (identity projection).
    Copy(u32),
    /// The object's slot `slot` if bound, else the symbolic variable `var`
    /// (the old evaluator's `env.get(v).unwrap_or(Var(v))` threading).
    SlotOrVar { slot: u32, var: u32 },
    /// A value known at lowering time.
    Ground(GMode),
}

/// Default for a generic method-mode parameter left unbound at a call
/// site.
#[derive(Clone, Copy, Debug)]
pub(crate) enum MDefault {
    /// Shadowed name: fall through to an earlier environment slot (the old
    /// evaluator's name-keyed map kept the owner's binding visible).
    FromSlot(u32),
    /// No binding anywhere: reads error as "unbound mode variable".
    Missing,
}

/// A generic method-mode parameter.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MParam {
    pub(crate) default: MDefault,
}

/// Per-body compilation state, shared program-wide (every concurrent run
/// over a lowered program sees the same cells, so each tier compiles at
/// most once per program). One cell per compilable body: method bodies,
/// attributors, and field initializers.
#[derive(Debug, Default)]
pub(crate) struct BodyCell {
    /// Lazily compiled bytecode (see [`crate::compile`]).
    code: OnceLock<crate::compile::Code>,
    /// Invocation hit counter driving the threaded engine's
    /// profile-guided tier-up. Program-wide and racy by design: tier
    /// choice is perf-only and never observable in results.
    hot: AtomicU32,
    /// Lazily compiled tier-2 threaded code (threaded engine only).
    pub(crate) threaded: OnceLock<crate::interp::threaded::TCode>,
}

impl BodyCell {
    /// The compiled bytecode, if any engine has compiled this body yet.
    #[inline]
    pub(crate) fn code(&self) -> Option<&crate::compile::Code> {
        self.code.get()
    }

    /// The compiled bytecode, compiling it first if needed.
    #[inline]
    pub(crate) fn code_or_compile(
        &self,
        body: &LExpr,
        n_base: u32,
        ic: &crate::compile::IcCounters,
    ) -> &crate::compile::Code {
        self.code
            .get_or_init(|| crate::compile::compile_body(body, n_base, ic))
    }

    /// Records one invocation and returns the new hit count (saturating).
    #[inline]
    pub(crate) fn hot_hit(&self) -> u32 {
        let c = self.hot.load(Ordering::Relaxed);
        if c == u32::MAX {
            return c;
        }
        self.hot.fetch_add(1, Ordering::Relaxed).saturating_add(1)
    }
}

/// A lowered method body, shared by every class that inherits it.
#[derive(Debug)]
pub(crate) struct LMethod {
    /// Declared value-parameter count; the frame's locals are padded or
    /// truncated to exactly this many slots.
    pub(crate) n_params: u32,
    pub(crate) mode_params: Vec<MParam>,
    /// Method-level attributor body, if any.
    pub(crate) attributor: Option<LExpr>,
    /// Method-level `@mode<η>` override, if any.
    pub(crate) mode_override: Option<LOverride>,
    pub(crate) body: LExpr,
    /// Compilation state for `body` (bytecode + threaded tiers).
    pub(crate) body_code: BodyCell,
    /// Compilation state for `attributor`.
    pub(crate) attr_code: BodyCell,
}

/// A vtable entry: the lowered method plus the environment projection from
/// the receiver's class to the method's declaring owner.
#[derive(Clone, Debug)]
pub(crate) struct MethodEntry {
    pub(crate) env_map: Arc<[EnvSrc]>,
    pub(crate) method: Arc<LMethod>,
}

/// A field initializer, evaluated after positional constructor arguments.
#[derive(Debug)]
pub(crate) struct InitJob {
    pub(crate) slot: u32,
    /// Projection onto the declaring class's mode parameters.
    pub(crate) env_map: Arc<[EnvSrc]>,
    pub(crate) body: LExpr,
    /// Compilation state for `body`.
    pub(crate) code: BodyCell,
}

/// The constructor protocol for a class: positional fields in chain order,
/// then initializers in chain order.
#[derive(Debug)]
pub(crate) struct CtorPlan {
    /// `(field slot, field name)`; the name feeds the missing-argument
    /// error message.
    pub(crate) positional: Vec<(u32, Ident)>,
    pub(crate) inits: Vec<InitJob>,
}

/// A lowered class-level attributor.
#[derive(Debug)]
pub(crate) struct ClassAttributor {
    pub(crate) body: LExpr,
    /// Whether the class has an internal mode parameter (slot 0) to bind
    /// to the snapshot-produced mode.
    pub(crate) has_internal: bool,
    /// Compilation state for `body`.
    pub(crate) code: BodyCell,
}

/// Instantiation when `new C(...)` is written without mode arguments.
#[derive(Debug)]
pub(crate) enum DefaultNew {
    /// Dynamic class: untagged, all parameters unbound.
    Dynamic,
    /// Static class: mode `env[0]` (or `⊥` when mode-neutral), parameters
    /// pinned to their declared lower bounds verbatim.
    Fixed { env: Arc<[GMode]> },
}

/// Everything the interpreter needs to know about one class, computed at
/// load time.
#[derive(Debug)]
pub(crate) struct ClassLayout {
    pub(crate) name: ClassName,
    pub(crate) n_mode_params: u32,
    /// Field names in slot order (inherited first), for rendering.
    pub(crate) field_order: Vec<Ident>,
    /// Global field id → slot, `u32::MAX` when the class lacks the field.
    /// Ids interned after this layout was built simply index out of range.
    pub(crate) field_slot: Vec<u32>,
    /// Global method id → resolved entry (most-derived declaration wins).
    pub(crate) vtable: Vec<Option<MethodEntry>>,
    pub(crate) ctor: CtorPlan,
    pub(crate) attributor: Option<ClassAttributor>,
    pub(crate) default_new: DefaultNew,
}

/// How a `new` expression instantiates its class's mode parameters.
#[derive(Clone, Debug)]
pub(crate) enum NewPlan {
    /// `new C@mode<?, …>(…)`: untagged; `rest` binds parameter slots
    /// `1..=rest.len()` (already truncated to the parameter count, matching
    /// the old zip semantics — surplus arguments are never even resolved).
    Dynamic { rest: Vec<LMode> },
    /// `new C@mode<m, …>(…)`: every element is resolved, in order (even
    /// surplus ones — resolution errors must still fire), then zipped onto
    /// the parameter slots; the object's mode is `flat[0]` (or `⊥`).
    Static { flat: Vec<LMode> },
    /// No mode arguments: use the class's [`DefaultNew`].
    Default,
}

/// The target of a checked cast.
#[derive(Clone, Debug)]
pub(crate) enum CastCheck {
    /// A known class, checked against the subclass matrix.
    Class(u32),
    /// An undeclared class name: the cast always fails (as the old
    /// chain-walk did), with this name in the message.
    Unknown(ClassName),
}

/// A builtin, pre-dispatched from its `(namespace, name)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BOp {
    ExtBattery,
    ExtTemperature,
    ExtTimeMs,
    SimWork,
    SimSleepMs,
    SimRand,
    IoPrint,
    StrLen,
    StrOfInt,
    StrOfDouble,
    StrSub,
    MathFloor,
    MathToDouble,
    MathMin,
    MathMax,
    MathFmin,
    MathFmax,
    MathAbs,
    MathSqrt,
    MathPow,
    ArrRange,
    ArrLen,
    ArrGet,
    ArrSub,
    ArrConcat,
    ArrPush,
    ArrMake,
    Unknown,
}

/// A lowered statement.
#[derive(Debug)]
pub(crate) enum LStmt {
    /// Pushes one frame slot (the let's name was resolved away).
    Let(LExpr),
    Expr(LExpr),
    Return(LExpr),
}

/// A lowered expression. Every node corresponds 1:1 to a surface
/// [`ExprKind`] node, so gas accounting is unchanged.
#[derive(Debug)]
pub(crate) enum LExpr {
    /// A literal, pre-converted to its runtime value.
    Lit(Value),
    ModeConst(ent_modes::ModeName),
    This,
    /// A frame-slot read; `name` only feeds the unbound-parameter error.
    Var {
        slot: u32,
        name: Ident,
    },
    /// A variable with no binding in scope: always errors.
    UnboundVar(Ident),
    Field {
        recv: Box<LExpr>,
        /// Global field id, looked up in the receiver's
        /// [`ClassLayout::field_slot`].
        field: u32,
        name: Ident,
    },
    New {
        class: u32,
        plan: NewPlan,
        ctor_args: Vec<LExpr>,
    },
    /// `new` of an undeclared class: arguments evaluate, then it errors.
    NewUnknown {
        class: ClassName,
        ctor_args: Vec<LExpr>,
    },
    Call {
        recv: Box<LExpr>,
        /// Global method id, looked up in the receiver's vtable.
        method: u32,
        mode_args: Vec<LMode>,
        args: Vec<LExpr>,
    },
    Builtin {
        op: BOp,
        /// Kept for the unknown/misapplied-builtin message.
        ns: Ident,
        name: Ident,
        args: Vec<LExpr>,
    },
    Cast {
        check: Option<CastCheck>,
        expr: Box<LExpr>,
    },
    Snapshot {
        expr: Box<LExpr>,
        lo: LMode,
        hi: LMode,
    },
    MCase(Vec<(ent_modes::ModeName, LExpr)>),
    Elim {
        expr: Box<LExpr>,
        mode: Option<LMode>,
    },
    Binary {
        op: BinOp,
        lhs: Box<LExpr>,
        rhs: Box<LExpr>,
    },
    Unary {
        op: UnOp,
        expr: Box<LExpr>,
    },
    If {
        cond: Box<LExpr>,
        then: Box<LExpr>,
        els: Option<Box<LExpr>>,
    },
    Block(Vec<LStmt>),
    Try {
        body: Box<LExpr>,
        handler: Box<LExpr>,
    },
    ArrayLit(Vec<LExpr>),
}

/// A program compiled to the indexed runtime IR. Build one with
/// [`lower_program`] and execute it (any number of times) with
/// [`crate::run_lowered`].
#[derive(Debug)]
pub struct LoweredProgram {
    /// Mode constants; the first `n_declared` are the `modes { … }` block
    /// in declaration order, the rest were merely mentioned.
    pub(crate) mode_names: Interner,
    pub(crate) n_declared: u32,
    /// `n_declared × n_declared` partial-order matrix, row-major.
    pub(crate) mode_le: Vec<bool>,
    /// Mode variables (display names for diagnostics).
    pub(crate) mode_vars: Interner,
    /// Global method-name table.
    pub(crate) method_names: Interner,
    /// Class layouts in declaration order.
    pub(crate) classes: Vec<ClassLayout>,
    /// `n × n` nominal-subtyping matrix, row-major (`subclass[c * n + d]`).
    pub(crate) subclass: Vec<bool>,
    /// `(class id, method id)` of `Main.main`, when `Main` declares it
    /// directly.
    pub(crate) main: Option<(u32, u32)>,
    /// Inline-cache site-id counters for lazily compiled bytecode bodies.
    pub(crate) ic: crate::compile::IcCounters,
}

impl LoweredProgram {
    /// The ground partial order, replicating `ModeTable::le_ground` arm for
    /// arm (variables — and the never-reaching `Missing` — compare false).
    pub(crate) fn le(&self, a: GMode, b: GMode) -> bool {
        match (a, b) {
            (GMode::Bot, _) | (_, GMode::Top) => true,
            (GMode::Top, _) | (_, GMode::Bot) => false,
            (GMode::Const(x), GMode::Const(y)) => {
                x == y || {
                    let n = self.n_declared as usize;
                    let (x, y) = (x as usize, y as usize);
                    x < n && y < n && self.mode_le[x * n + y]
                }
            }
            _ => false,
        }
    }

    pub(crate) fn is_subclass_id(&self, c: u32, d: u32) -> bool {
        let n = self.classes.len();
        self.subclass[c as usize * n + d as usize]
    }

    /// Displays a mode exactly as the old evaluator's `StaticMode` did.
    pub(crate) fn mode_disp(&self, g: GMode) -> DispMode<'_> {
        DispMode { prog: self, g }
    }

    // ---- id resolution (the event/profile rendering surface) ------------

    /// The name of a class id, as carried by [`crate::EnergyEvent`]s.
    pub fn class_name(&self, id: u32) -> &str {
        self.classes[id as usize].name.as_str()
    }

    /// The name of a global method id, as carried by
    /// [`crate::EnergyEvent`]s and profile frames.
    pub fn method_name(&self, id: u32) -> &str {
        self.method_names.resolve(ent_syntax::Symbol::from_raw(id))
    }

    /// Renders an interned mode back through the interner (`⊥`, `⊤`,
    /// constant or variable name).
    pub fn mode_string(&self, g: GMode) -> String {
        self.mode_disp(g).to_string()
    }

    /// Number of classes (valid class ids are `0..n_classes`).
    pub fn n_classes(&self) -> u32 {
        self.classes.len() as u32
    }
}

/// Display adapter matching `StaticMode`'s rendering (`⊥`, `⊤`, constant
/// or variable name).
pub(crate) struct DispMode<'a> {
    prog: &'a LoweredProgram,
    g: GMode,
}

impl fmt::Display for DispMode<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.g {
            GMode::Bot => f.write_str("⊥"),
            GMode::Top => f.write_str("⊤"),
            GMode::Const(i) => f.write_str(
                self.prog
                    .mode_names
                    .resolve(ent_syntax::Symbol::from_raw(i)),
            ),
            GMode::Var(i) => {
                f.write_str(self.prog.mode_vars.resolve(ent_syntax::Symbol::from_raw(i)))
            }
            GMode::Missing => f.write_str("<unbound>"),
        }
    }
}

/// Lowers a compiled program into the indexed runtime IR. Infallible:
/// names that cannot be resolved statically lower to nodes that reproduce
/// the original evaluator's runtime errors.
pub fn lower_program(compiled: &CompiledProgram) -> LoweredProgram {
    let program = &compiled.program;
    let table = &compiled.table;

    let mut mode_names = Interner::new();
    for m in program.mode_table.modes() {
        mode_names.intern(m.as_str());
    }
    let n_declared = mode_names.len() as u32;
    let n = n_declared as usize;
    let mut mode_le = vec![false; n * n];
    for (i, a) in program.mode_table.modes().iter().enumerate() {
        for (j, b) in program.mode_table.modes().iter().enumerate() {
            mode_le[i * n + j] = program.mode_table.le_const(a, b);
        }
    }

    let class_order: Vec<ClassName> = table.names().to_vec();
    let mut class_ids = HashMap::new();
    for (i, c) in class_order.iter().enumerate() {
        class_ids.insert(c.clone(), i as u32);
    }
    let nc = class_order.len();
    let mut subclass = vec![false; nc * nc];
    for (ci, c) in class_order.iter().enumerate() {
        for (di, d) in class_order.iter().enumerate() {
            subclass[ci * nc + di] = table.is_subclass(c, d);
        }
    }

    let mut lowerer = Lowerer {
        table,
        mode_names,
        mode_vars: Interner::new(),
        method_names: Interner::new(),
        field_names: Interner::new(),
        class_ids,
        class_order,
        method_cache: HashMap::new(),
        env_cache: HashMap::new(),
    };

    // Pre-intern every declared method and field name so vtables and field
    // tables built early still cover names declared in later classes.
    for cname in table.names() {
        let decl = table.class(cname).expect("ordered classes exist");
        for f in &decl.fields {
            lowerer.field_names.intern(f.name.as_str());
        }
        for m in &decl.methods {
            lowerer.method_names.intern(m.name.as_str());
        }
    }

    let mut classes = Vec::with_capacity(nc);
    for ci in 0..nc as u32 {
        classes.push(lowerer.lower_class(ci));
    }

    let main = table.class(&ClassName::new("Main")).and_then(|decl| {
        decl.method(&Ident::new("main"))?;
        let cid = lowerer.class_ids[&ClassName::new("Main")];
        let mid = lowerer
            .method_names
            .get("main")
            .expect("declared method names are pre-interned")
            .raw();
        Some((cid, mid))
    });

    LoweredProgram {
        mode_names: lowerer.mode_names,
        n_declared,
        mode_le,
        mode_vars: lowerer.mode_vars,
        method_names: lowerer.method_names,
        classes,
        subclass,
        main,
        ic: crate::compile::IcCounters::default(),
    }
}

struct Lowerer<'a> {
    table: &'a ClassTable,
    mode_names: Interner,
    mode_vars: Interner,
    method_names: Interner,
    field_names: Interner,
    class_ids: HashMap<ClassName, u32>,
    class_order: Vec<ClassName>,
    /// One lowered body per declaring `(owner, method)` pair, shared by
    /// every inheriting class's vtable.
    method_cache: HashMap<(u32, u32), Arc<LMethod>>,
    /// One environment projection per `(class, owner)` pair.
    env_cache: HashMap<(u32, u32), Arc<[EnvSrc]>>,
}

/// Lexical scope threaded through expression lowering: the mode-variable
/// slot layout of the enclosing frame plus the stack of local names.
struct ExprCtx<'e> {
    env: &'e [ModeVar],
    locals: Vec<Ident>,
}

impl Lowerer<'_> {
    fn ground_verbatim(&mut self, m: &StaticMode) -> GMode {
        match m {
            StaticMode::Bot => GMode::Bot,
            StaticMode::Top => GMode::Top,
            StaticMode::Const(c) => GMode::Const(self.mode_names.intern(c.as_str()).raw()),
            StaticMode::Var(v) => GMode::Var(self.mode_vars.intern(v.as_str()).raw()),
        }
    }

    /// Lowers a static mode in a frame whose mode-environment layout is
    /// `env`. Name lookup takes the *last* matching slot, replicating the
    /// old hash map's insert-overwrites behavior.
    fn lower_static(&mut self, env: &[ModeVar], m: &StaticMode) -> LMode {
        match m {
            StaticMode::Var(v) => {
                let var = self.mode_vars.intern(v.as_str()).raw();
                match env.iter().rposition(|p| p == v) {
                    Some(j) => LMode::Param {
                        slot: j as u32,
                        var,
                    },
                    None => LMode::Unbound(var),
                }
            }
            g => LMode::Ground(self.ground_verbatim(g)),
        }
    }

    /// The environment projection from `class` onto an ancestor `owner`:
    /// a symbolic replay of the old evaluator's `owner_mode_env` walk over
    /// superclass instantiations, compiled to per-slot [`EnvSrc`]s.
    fn env_map(&mut self, class: u32, owner: u32) -> Arc<[EnvSrc]> {
        if let Some(m) = self.env_cache.get(&(class, owner)) {
            return Arc::clone(m);
        }
        let owner_name = self.class_order[owner as usize].clone();
        let mut cur = self.class_order[class as usize].clone();
        let mut params: Vec<ModeVar> = self
            .table
            .class(&cur)
            .expect("lowered classes exist")
            .mode_params
            .params();
        // `None` models a parameter with no entry in the runtime map.
        let mut abs: Vec<Option<EnvSrc>> = (0..params.len())
            .map(|i| Some(EnvSrc::Copy(i as u32)))
            .collect();
        while cur != owner_name {
            let decl = self.table.class(&cur).expect("validated chain");
            let sup = decl.superclass.clone();
            let sup_decl = self.table.class(&sup).expect("validated chain");
            let sup_params = sup_decl.mode_params.params();
            let args: Vec<Option<EnvSrc>> = if decl.super_args.is_empty() {
                sup_decl
                    .mode_params
                    .bounds
                    .iter()
                    .map(|b| {
                        let g = self.ground_verbatim(&b.lo);
                        Some(EnvSrc::Ground(g))
                    })
                    .collect()
            } else {
                decl.super_args
                    .iter()
                    .map(|m| {
                        Some(match m {
                            StaticMode::Var(v) => {
                                let var = self.mode_vars.intern(v.as_str()).raw();
                                match params.iter().rposition(|p| p == v) {
                                    Some(j) => match abs[j] {
                                        Some(EnvSrc::Copy(i)) => EnvSrc::SlotOrVar { slot: i, var },
                                        Some(src) => src,
                                        None => EnvSrc::Ground(GMode::Var(var)),
                                    },
                                    None => EnvSrc::Ground(GMode::Var(var)),
                                }
                            }
                            g => {
                                let g = self.ground_verbatim(g);
                                EnvSrc::Ground(g)
                            }
                        })
                    })
                    .collect()
            };
            abs = (0..sup_params.len())
                .map(|k| args.get(k).copied().flatten())
                .collect();
            params = sup_params;
            cur = sup;
        }
        let map: Arc<[EnvSrc]> = abs
            .into_iter()
            .map(|o| o.unwrap_or(EnvSrc::Ground(GMode::Missing)))
            .collect();
        self.env_cache.insert((class, owner), Arc::clone(&map));
        map
    }

    fn lower_class(&mut self, ci: u32) -> ClassLayout {
        let cname = self.class_order[ci as usize].clone();
        let decl = self
            .table
            .class(&cname)
            .expect("lowered classes exist")
            .clone();
        let chain = self.table.superclass_chain(&cname);

        // Field layout: inherited first, first declaration wins the id slot.
        let mut field_order = Vec::new();
        for anc in &chain {
            let adecl = self.table.class(anc).expect("validated chain");
            for f in &adecl.fields {
                field_order.push(f.name.clone());
            }
        }
        let mut field_slot = vec![u32::MAX; self.field_names.len()];
        for (i, name) in field_order.iter().enumerate() {
            let fid = self.field_names.intern(name.as_str()).index();
            if field_slot.len() <= fid {
                field_slot.resize(fid + 1, u32::MAX);
            }
            if field_slot[fid] == u32::MAX {
                field_slot[fid] = i as u32;
            }
        }

        // Constructor plan: positional fields and initializer jobs, both in
        // chain order.
        let mut positional = Vec::new();
        let mut inits = Vec::new();
        let mut slot = 0u32;
        for anc in &chain {
            let adecl = self.table.class(anc).expect("validated chain").clone();
            let aid = self.class_ids[anc];
            let owner_params = adecl.mode_params.params();
            for f in &adecl.fields {
                if let Some(init) = &f.init {
                    let env_map = self.env_map(ci, aid);
                    let body = self.lower_expr_in(&owner_params, &[], init);
                    inits.push(InitJob {
                        slot,
                        env_map,
                        body,
                        code: BodyCell::default(),
                    });
                } else {
                    positional.push((slot, f.name.clone()));
                }
                slot += 1;
            }
        }

        // Vtable: walk the chain most-derived first; the first declaration
        // of each method id wins, exactly like the old chain-walk cache.
        let mut vtable: Vec<Option<MethodEntry>> =
            (0..self.method_names.len()).map(|_| None).collect();
        for anc in chain.iter().rev() {
            let adecl = self.table.class(anc).expect("validated chain").clone();
            let aid = self.class_ids[anc];
            for m in &adecl.methods {
                let mid = self
                    .method_names
                    .get(m.name.as_str())
                    .expect("declared method names are pre-interned")
                    .index();
                if vtable[mid].is_none() {
                    let env_map = self.env_map(ci, aid);
                    let method = self.lower_method(aid, m);
                    vtable[mid] = Some(MethodEntry { env_map, method });
                }
            }
        }

        let class_params = decl.mode_params.params();
        let attributor = decl.attributor.as_ref().map(|a| ClassAttributor {
            body: self.lower_expr_in(&class_params, &[], &a.body),
            has_internal: !decl.mode_params.bounds.is_empty(),
            code: BodyCell::default(),
        });

        let default_new = if decl.mode_params.dynamic {
            DefaultNew::Dynamic
        } else {
            let env: Arc<[GMode]> = decl
                .mode_params
                .bounds
                .iter()
                .map(|b| self.ground_verbatim(&b.lo))
                .collect();
            DefaultNew::Fixed { env }
        };

        ClassLayout {
            name: cname,
            n_mode_params: decl.mode_params.bounds.len() as u32,
            field_order,
            field_slot,
            vtable,
            ctor: CtorPlan { positional, inits },
            attributor,
            default_new,
        }
    }

    fn lower_method(&mut self, owner: u32, mdecl: &MethodDecl) -> Arc<LMethod> {
        let mid = self.method_names.intern(mdecl.name.as_str()).raw();
        if let Some(cached) = self.method_cache.get(&(owner, mid)) {
            return Arc::clone(cached);
        }
        let odecl = self
            .table
            .class(&self.class_order[owner as usize])
            .expect("lowered classes exist");
        // Frame mode-environment layout: owner class parameters, then the
        // method's own mode parameters.
        let mut env_layout: Vec<ModeVar> = odecl.mode_params.params();
        let n0 = env_layout.len();
        for b in &mdecl.mode_params {
            env_layout.push(b.var.clone());
        }
        let mut mode_params = Vec::with_capacity(mdecl.mode_params.len());
        for (k, b) in mdecl.mode_params.iter().enumerate() {
            let default = match env_layout[..n0 + k].iter().rposition(|v| v == &b.var) {
                Some(j) => MDefault::FromSlot(j as u32),
                None => MDefault::Missing,
            };
            mode_params.push(MParam { default });
        }
        let locals: Vec<Ident> = mdecl.params.iter().map(|(_, n)| n.clone()).collect();
        let attributor = mdecl
            .attributor
            .as_ref()
            .map(|a| self.lower_expr_in(&env_layout, &locals, &a.body));
        let mode_override = mdecl.mode.as_ref().map(|m| match m {
            StaticMode::Var(v) => {
                let var = self.mode_vars.intern(v.as_str()).raw();
                match env_layout.iter().rposition(|p| p == v) {
                    Some(j) => LOverride::Param {
                        slot: j as u32,
                        var,
                    },
                    None => LOverride::Ground(GMode::Var(var)),
                }
            }
            g => LOverride::Ground(self.ground_verbatim(g)),
        });
        let body = self.lower_expr_in(&env_layout, &locals, &mdecl.body);
        let method = Arc::new(LMethod {
            n_params: mdecl.params.len() as u32,
            mode_params,
            attributor,
            mode_override,
            body,
            body_code: BodyCell::default(),
            attr_code: BodyCell::default(),
        });
        self.method_cache.insert((owner, mid), Arc::clone(&method));
        method
    }

    fn lower_expr_in(&mut self, env: &[ModeVar], locals: &[Ident], e: &Expr) -> LExpr {
        let mut ctx = ExprCtx {
            env,
            locals: locals.to_vec(),
        };
        self.lower_expr(&mut ctx, e)
    }

    fn lower_expr(&mut self, ctx: &mut ExprCtx<'_>, e: &Expr) -> LExpr {
        match &e.kind {
            ExprKind::Lit(l) => LExpr::Lit(match l {
                Lit::Int(n) => Value::Int(*n),
                Lit::Double(x) => Value::Double(*x),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Str(s) => Value::str(s),
                Lit::Unit => Value::Unit,
            }),
            ExprKind::ModeConst(m) => {
                // Interned so snapshot/eliminate can map the produced
                // `Value::Mode` back to a dense id.
                self.mode_names.intern(m.as_str());
                LExpr::ModeConst(m.clone())
            }
            ExprKind::This => LExpr::This,
            ExprKind::Var(x) => match ctx.locals.iter().rposition(|n| n == x) {
                Some(i) => LExpr::Var {
                    slot: i as u32,
                    name: x.clone(),
                },
                None => LExpr::UnboundVar(x.clone()),
            },
            ExprKind::Field { recv, name } => LExpr::Field {
                recv: Box::new(self.lower_expr(ctx, recv)),
                field: self.field_names.intern(name.as_str()).raw(),
                name: name.clone(),
            },
            ExprKind::New {
                class,
                args,
                ctor_args,
            } => {
                let lowered_args: Vec<LExpr> =
                    ctor_args.iter().map(|a| self.lower_expr(ctx, a)).collect();
                let Some(&cid) = self.class_ids.get(class) else {
                    return LExpr::NewUnknown {
                        class: class.clone(),
                        ctor_args: lowered_args,
                    };
                };
                let n_params = self
                    .table
                    .class(class)
                    .expect("id implies presence")
                    .mode_params
                    .bounds
                    .len();
                let plan = match args {
                    Some(margs) if margs.is_dynamic() => {
                        // Zip semantics: surplus arguments are dropped
                        // without ever being resolved.
                        let take = n_params.saturating_sub(1).min(margs.rest.len());
                        NewPlan::Dynamic {
                            rest: margs.rest[..take]
                                .iter()
                                .map(|m| self.lower_static(ctx.env, m))
                                .collect(),
                        }
                    }
                    Some(margs) => {
                        let mut flat = Vec::with_capacity(1 + margs.rest.len());
                        if let Mode::Static(m) = &margs.mode {
                            flat.push(self.lower_static(ctx.env, m));
                        }
                        flat.extend(margs.rest.iter().map(|m| self.lower_static(ctx.env, m)));
                        NewPlan::Static { flat }
                    }
                    None => NewPlan::Default,
                };
                LExpr::New {
                    class: cid,
                    plan,
                    ctor_args: lowered_args,
                }
            }
            ExprKind::Call {
                recv,
                method,
                mode_args,
                args,
            } => LExpr::Call {
                recv: Box::new(self.lower_expr(ctx, recv)),
                method: self.method_names.intern(method.as_str()).raw(),
                mode_args: mode_args
                    .iter()
                    .map(|m| self.lower_static(ctx.env, m))
                    .collect(),
                args: args.iter().map(|a| self.lower_expr(ctx, a)).collect(),
            },
            ExprKind::Builtin { ns, name, args } => LExpr::Builtin {
                op: builtin_op(ns.as_str(), name.as_str()),
                ns: ns.clone(),
                name: name.clone(),
                args: args.iter().map(|a| self.lower_expr(ctx, a)).collect(),
            },
            ExprKind::Cast { ty, expr } => {
                let check = match ty {
                    Type::Object { class, .. } if *class != ClassName::object() => {
                        Some(match self.class_ids.get(class) {
                            Some(&cid) => CastCheck::Class(cid),
                            None => CastCheck::Unknown(class.clone()),
                        })
                    }
                    _ => None,
                };
                LExpr::Cast {
                    check,
                    expr: Box::new(self.lower_expr(ctx, expr)),
                }
            }
            ExprKind::Snapshot { expr, lo, hi } => LExpr::Snapshot {
                expr: Box::new(self.lower_expr(ctx, expr)),
                lo: self.lower_static(ctx.env, lo),
                hi: self.lower_static(ctx.env, hi),
            },
            ExprKind::MCase { ty: _, arms } => LExpr::MCase(
                arms.iter()
                    .map(|(m, a)| {
                        self.mode_names.intern(m.as_str());
                        (m.clone(), self.lower_expr(ctx, a))
                    })
                    .collect(),
            ),
            ExprKind::Elim { expr, mode } => LExpr::Elim {
                expr: Box::new(self.lower_expr(ctx, expr)),
                mode: mode.as_ref().map(|m| self.lower_static(ctx.env, m)),
            },
            ExprKind::Binary { op, lhs, rhs } => LExpr::Binary {
                op: *op,
                lhs: Box::new(self.lower_expr(ctx, lhs)),
                rhs: Box::new(self.lower_expr(ctx, rhs)),
            },
            ExprKind::Unary { op, expr } => LExpr::Unary {
                op: *op,
                expr: Box::new(self.lower_expr(ctx, expr)),
            },
            ExprKind::If { cond, then, els } => LExpr::If {
                cond: Box::new(self.lower_expr(ctx, cond)),
                then: Box::new(self.lower_expr(ctx, then)),
                els: els.as_ref().map(|e| Box::new(self.lower_expr(ctx, e))),
            },
            ExprKind::Block(stmts) => {
                let depth = ctx.locals.len();
                let mut out = Vec::with_capacity(stmts.len());
                for stmt in stmts {
                    out.push(match stmt {
                        Stmt::Let { name, value, .. } => {
                            let v = self.lower_expr(ctx, value);
                            ctx.locals.push(name.clone());
                            LStmt::Let(v)
                        }
                        Stmt::Expr(e) => LStmt::Expr(self.lower_expr(ctx, e)),
                        Stmt::Return(e) => LStmt::Return(self.lower_expr(ctx, e)),
                    });
                }
                ctx.locals.truncate(depth);
                LExpr::Block(out)
            }
            ExprKind::Try { body, handler } => LExpr::Try {
                body: Box::new(self.lower_expr(ctx, body)),
                handler: Box::new(self.lower_expr(ctx, handler)),
            },
            ExprKind::ArrayLit(items) => {
                LExpr::ArrayLit(items.iter().map(|i| self.lower_expr(ctx, i)).collect())
            }
        }
    }
}

fn builtin_op(ns: &str, name: &str) -> BOp {
    match (ns, name) {
        ("Ext", "battery") => BOp::ExtBattery,
        ("Ext", "temperature") => BOp::ExtTemperature,
        ("Ext", "timeMs") => BOp::ExtTimeMs,
        ("Sim", "work") => BOp::SimWork,
        ("Sim", "sleepMs") => BOp::SimSleepMs,
        ("Sim", "rand") => BOp::SimRand,
        ("IO", "print") => BOp::IoPrint,
        ("Str", "len") => BOp::StrLen,
        ("Str", "ofInt") => BOp::StrOfInt,
        ("Str", "ofDouble") => BOp::StrOfDouble,
        ("Str", "sub") => BOp::StrSub,
        ("Math", "floor") => BOp::MathFloor,
        ("Math", "toDouble") => BOp::MathToDouble,
        ("Math", "min") => BOp::MathMin,
        ("Math", "max") => BOp::MathMax,
        ("Math", "fmin") => BOp::MathFmin,
        ("Math", "fmax") => BOp::MathFmax,
        ("Math", "abs") => BOp::MathAbs,
        ("Math", "sqrt") => BOp::MathSqrt,
        ("Math", "pow") => BOp::MathPow,
        ("Arr", "range") => BOp::ArrRange,
        ("Arr", "len") => BOp::ArrLen,
        ("Arr", "get") => BOp::ArrGet,
        ("Arr", "sub") => BOp::ArrSub,
        ("Arr", "concat") => BOp::ArrConcat,
        ("Arr", "push") => BOp::ArrPush,
        ("Arr", "make") => BOp::ArrMake,
        _ => BOp::Unknown,
    }
}
