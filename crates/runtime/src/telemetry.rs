//! Machine-readable run telemetry: [`RunResult::to_json`] and the small
//! JSON utilities the reporting layers share.
//!
//! The workspace deliberately has no serde dependency (offline,
//! vendored-deps-only builds), so JSON is emitted by hand here and in
//! [`crate::profile`]. The emitters keep three invariants: strings go
//! through [`json_escape`], floats go through [`json_f64`] (non-finite
//! values become `null`), and the `*_bits` fields carry exact f64 bit
//! patterns as hex strings so consumers can compare energy/time across
//! configurations bit-for-bit, the same way the semantics fingerprints do.
//!
//! [`json_is_valid`] is a minimal syntax checker (not a parser) used by
//! tests to guarantee every emitted document is well-formed without
//! pulling in a JSON crate.

use std::fmt::Write as _;

use crate::interp::RunResult;

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an f64 as a JSON number (`Display` for f64 is exact-round-trip
/// and never uses exponent notation); non-finite values become `null`.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `Display` prints integral floats without a fraction ("5"), which
        // is still a valid JSON number.
        s
    } else {
        "null".to_string()
    }
}

/// The exact bit pattern of an f64, as a fixed-width hex string.
pub(crate) fn json_f64_bits(x: f64) -> String {
    format!("\"{:016x}\"", x.to_bits())
}

impl RunResult {
    /// The whole run as one JSON document: status, counters, measurement
    /// (with exact f64 bit patterns), battery/thermal trajectory summaries,
    /// event-stream accounting, and the profile when one was collected.
    ///
    /// This is what the CLI writes for `--metrics-json` and what the bench
    /// binaries embed in their per-benchmark metrics files.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\": \"ent-run-telemetry/1\"");

        match &self.value {
            Ok(_) => {
                out.push_str(", \"status\": \"ok\", \"error\": null");
                let _ = write!(
                    out,
                    ", \"value\": \"{}\"",
                    json_escape(self.value_pretty.as_deref().unwrap_or(""))
                );
            }
            Err(e) => {
                let _ = write!(
                    out,
                    ", \"status\": \"error\", \"error\": \"{}\", \"value\": null",
                    json_escape(&e.to_string())
                );
            }
        }

        let s = &self.stats;
        let _ = write!(
            out,
            ", \"stats\": {{\"steps\": {}, \"snapshots\": {}, \"copies\": {}, \"energy_exceptions\": {}, \"snapshot_failures\": {}, \"dfall_failures\": {}, \"transient_checks\": {}, \"transient_failures\": {}, \"dynamic_allocs\": {}, \"allocs\": {}, \"sensor_faults\": {}, \"stale_reads\": {}, \"degraded_decisions\": {}}}",
            s.steps,
            s.snapshots,
            s.copies,
            s.energy_exceptions,
            s.snapshot_failures,
            s.dfall_failures,
            s.transient_checks,
            s.transient_failures,
            s.dynamic_allocs,
            s.allocs,
            s.sensor_faults,
            s.stale_reads,
            s.degraded_decisions,
        );

        let m = &self.measurement;
        let _ = write!(
            out,
            ", \"measurement\": {{\"energy_j\": {}, \"energy_j_bits\": {}, \"time_s\": {}, \"time_s_bits\": {}, \"peak_temp_c\": {}, \"battery_level\": {}}}",
            json_f64(m.energy_j),
            json_f64_bits(m.energy_j),
            json_f64(m.time_s),
            json_f64_bits(m.time_s),
            json_f64(m.peak_temp_c),
            json_f64(m.battery_level),
        );

        // Trajectory summaries from the unified sampler (null when sampling
        // was off).
        if self.samples.is_empty() {
            out.push_str(", \"trajectory\": null");
        } else {
            let first = self.samples.first().unwrap();
            let last = self.samples.last().unwrap();
            let n = self.samples.len();
            let temp_min = self
                .samples
                .iter()
                .map(|p| p.temp_c)
                .fold(f64::INFINITY, f64::min);
            let temp_max = self
                .samples
                .iter()
                .map(|p| p.temp_c)
                .fold(f64::NEG_INFINITY, f64::max);
            let temp_mean = self.samples.iter().map(|p| p.temp_c).sum::<f64>() / n as f64;
            let _ = write!(
                out,
                ", \"trajectory\": {{\"samples\": {}, \"span_s\": {}, \"battery_start\": {}, \"battery_end\": {}, \"temp_min_c\": {}, \"temp_mean_c\": {}, \"temp_max_c\": {}}}",
                n,
                json_f64(last.t_s - first.t_s),
                json_f64(first.battery),
                json_f64(last.battery),
                json_f64(temp_min),
                json_f64(temp_mean),
                json_f64(temp_max),
            );
        }

        let _ = write!(
            out,
            ", \"output_lines\": {}, \"events\": {{\"recorded\": {}, \"retained\": {}, \"dropped\": {}, \"capacity\": {}}}",
            self.output.len(),
            self.events.recorded(),
            self.events.len(),
            self.events.dropped(),
            self.events.capacity(),
        );

        let _ = write!(
            out,
            ", \"adapt\": {{\"mode\": \"{}\", \"generation\": {}}}",
            self.adapt_mode.as_str(),
            self.adapt_generation,
        );

        // Which strategy discharged the run's mode obligations, and how
        // often it checked/failed (the transient counters are 0 under
        // guarded, whose checks are the dfall/snapshot counters above).
        let _ = write!(
            out,
            ", \"enforcement\": {{\"strategy\": \"{}\", \"transient_checks\": {}, \"transient_failures\": {}, \"dfall_failures\": {}, \"snapshot_failures\": {}}}",
            self.enforcement.name(),
            s.transient_checks,
            s.transient_failures,
            s.dfall_failures,
            s.snapshot_failures,
        );

        // Tiering counters. All-zero for the tree and bytecode engines
        // (they never tier), so the object is byte-identical across
        // engines unless the threaded tier actually ran — the sampled
        // determinism gates diff full telemetry lines across engines.
        let t = &self.tier;
        let _ = write!(
            out,
            ", \"tier\": {{\"threaded_entries\": {}, \"threaded_compiles\": {}, \"deopts\": {}, \"deopt_enforcement\": {}, \"deopt_mode_window\": {}, \"deopt_ic_megamorphic\": {}, \"deopt_fault_epoch\": {}}}",
            t.threaded_entries,
            t.threaded_compiles,
            t.deopts(),
            t.deopt_enforcement,
            t.deopt_mode_window,
            t.deopt_ic_megamorphic,
            t.deopt_fault_epoch,
        );

        match &self.profile {
            Some(p) => {
                let _ = write!(out, ", \"profile\": {}", p.to_json());
            }
            None => out.push_str(", \"profile\": null"),
        }

        out.push('}');
        out
    }
}

/// A minimal JSON well-formedness check — a recursive-descent scan over the
/// grammar, accepting exactly one top-level value. Used by tests in place
/// of a JSON crate; it validates syntax only and builds nothing.
pub fn json_is_valid(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if !scan_value(b, &mut i, 0) {
        return false;
    }
    skip_ws(b, &mut i);
    i == b.len()
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn scan_value(b: &[u8], i: &mut usize, depth: usize) -> bool {
    if depth > 128 {
        return false;
    }
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => scan_seq(b, i, depth, b'}', |b, i, depth| {
            scan_string(b, i)
                && {
                    skip_ws(b, i);
                    b.get(*i) == Some(&b':') && {
                        *i += 1;
                        true
                    }
                }
                && scan_value(b, i, depth + 1)
        }),
        Some(b'[') => scan_seq(b, i, depth, b']', |b, i, depth| scan_value(b, i, depth + 1)),
        Some(b'"') => scan_string(b, i),
        Some(b't') => scan_lit(b, i, b"true"),
        Some(b'f') => scan_lit(b, i, b"false"),
        Some(b'n') => scan_lit(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => scan_number(b, i),
        _ => false,
    }
}

fn scan_seq(
    b: &[u8],
    i: &mut usize,
    depth: usize,
    close: u8,
    item: impl Fn(&[u8], &mut usize, usize) -> bool,
) -> bool {
    *i += 1; // the opening bracket
    skip_ws(b, i);
    if b.get(*i) == Some(&close) {
        *i += 1;
        return true;
    }
    loop {
        skip_ws(b, i);
        if !item(b, i, depth) {
            return false;
        }
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(c) if *c == close => {
                *i += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn scan_string(b: &[u8], i: &mut usize) -> bool {
    if b.get(*i) != Some(&b'"') {
        return false;
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return true;
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        *i += 1;
                        for _ in 0..4 {
                            if !b.get(*i).is_some_and(u8::is_ascii_hexdigit) {
                                return false;
                            }
                            *i += 1;
                        }
                    }
                    _ => return false,
                }
            }
            c if c < 0x20 => return false,
            _ => *i += 1,
        }
    }
    false
}

fn scan_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> bool {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        true
    } else {
        false
    }
}

fn scan_number(b: &[u8], i: &mut usize) -> bool {
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| -> bool {
        let start = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > start
    };
    if !digits(b, i) {
        return false;
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return false;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_well_formed_documents() {
        for s in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            "\"a \\\"b\\\" \\u00e9\"",
            "{\"a\": [1, 2.5, true, null], \"b\": {\"c\": \"d\"}}",
        ] {
            assert!(json_is_valid(s), "should accept: {s}");
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for s in [
            "",
            "{",
            "{\"a\": }",
            "[1, ]",
            "{'a': 1}",
            "NaN",
            "01a",
            "{} extra",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(!json_is_valid(s), "should reject: {s}");
        }
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert!(json_is_valid(&format!(
            "\"{}\"",
            json_escape("x\t\"y\"\u{2}")
        )));
    }

    #[test]
    fn floats_render_as_json_numbers() {
        assert_eq!(json_f64(5.0), "5");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "null");
        assert!(json_is_valid(&json_f64(1e-9)));
        assert!(json_is_valid(&json_f64_bits(1.5)));
    }
}
