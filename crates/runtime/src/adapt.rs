//! Online adaptive tuning: a lock-free, generation-stamped configuration
//! snapshot that the batch scheduler and program cache consult on their
//! hot paths, plus the tuner that refines it from run telemetry.
//!
//! This is the paper's "proactive and adaptive" story applied to the
//! runtime itself (ROADMAP item 3): the system measures its own batches —
//! steal counts, chunk utilization, cache hit rates, per-engine run times
//! — and re-specializes its scheduling knobs between batches, the
//! measure → refine → re-specialize loop of hybrid static/dynamic
//! feedback systems.
//!
//! # The snapshot protocol (read path is lock-free)
//!
//! [`AtomicConfig`] is a seqlock over a small plain-data [`AdaptConfig`]:
//!
//! * the **generation** word is even when a stable snapshot is published
//!   and odd while a writer is mid-update;
//! * **readers** ([`AtomicConfig::load`]) read the generation, copy the
//!   packed field words, and re-read the generation; if the two reads
//!   disagree (or the generation was odd), the copy may be torn and the
//!   reader retries. No locks, no allocation, no waiting on the read
//!   path: a reader does 4 atomic loads in the common case.
//! * **writers** ([`AtomicConfig::store`]) serialize on a mutex (updates
//!   are rare — at most one per batch), bump the generation to odd with
//!   `Release`→ write fields → publish the new even generation.
//!
//! Memory ordering: readers `Acquire` the generation before and after the
//! field loads; writers `Release` both bumps. The second generation load
//! therefore synchronizes-with the writer's first bump: if a reader saw
//! any store from writer generation `g+2`'s critical section, its
//! validating re-read observes a generation ≥ `g+1` (odd or advanced) and
//! retries. Generations are monotone — a reader can never observe them
//! moving backwards, which the stress test asserts.
//!
//! # Determinism
//!
//! Every knob in [`AdaptConfig`] is **value-neutral**: chunk and steal
//! granularity never change which job computes what (the batch engine
//! assembles results in job order and seeds by job identity), cache
//! capacity only changes when a program is recompiled, and the two
//! engines are bit-identical (proven by the engine-differential fuzz
//! harness). So `--adapt on` can only change timing. For byte-stable
//! *telemetry* too, `--adapt frozen` pins the current generation: the
//! tuner stops publishing and every subsequent run reports the same
//! generation stamp.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::interp::Engine;

/// How the adaptive engine behaves, process-wide.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdaptMode {
    /// Adaptation disabled: the scheduler and caches use their built-in
    /// defaults (or explicitly pinned values). The reproducible default.
    #[default]
    Off,
    /// The tuner refines the configuration online from batch telemetry.
    /// Changes timing only — never values, stats, or energy fingerprints.
    On,
    /// The configuration is pinned at its current generation: reads see a
    /// stable snapshot, the tuner publishes nothing. Deterministic figure
    /// harnesses use this to stamp every run with one generation.
    Frozen,
}

impl AdaptMode {
    /// Parses a CLI-facing mode name (`on` | `off` | `frozen`).
    pub fn parse(s: &str) -> Option<AdaptMode> {
        match s {
            "on" => Some(AdaptMode::On),
            "off" => Some(AdaptMode::Off),
            "frozen" => Some(AdaptMode::Frozen),
            _ => None,
        }
    }

    /// The CLI-facing name.
    pub fn as_str(self) -> &'static str {
        match self {
            AdaptMode::Off => "off",
            AdaptMode::On => "on",
            AdaptMode::Frozen => "frozen",
        }
    }
}

/// One published configuration snapshot: plain data, cheap to copy.
///
/// `0` means "auto" for every sizing field — the consumer derives its
/// built-in default (the scheduler picks a chunk from the batch shape,
/// the cache uses [`DEFAULT_CACHE_CAPACITY`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptConfig {
    /// Jobs a worker claims from its own range per grab (`0` = auto).
    pub chunk: u32,
    /// Smallest block a thief bothers stealing (`0` = auto: half the
    /// victim's remainder, at least one job).
    pub steal_min: u32,
    /// Total lowered-program cache capacity across shards (`0` = auto).
    pub cache_capacity: u32,
    /// Preferred execution engine for newly prepared programs, when the
    /// tuner has seen enough evidence to have an opinion.
    pub engine_hint: Option<Engine>,
}

/// Default total capacity of the sharded lowered-program cache (the
/// `cache_capacity = 0` resolution).
pub const DEFAULT_CACHE_CAPACITY: u32 = 256;

fn pack_sched(chunk: u32, steal_min: u32) -> u64 {
    ((chunk as u64) << 32) | steal_min as u64
}

fn pack_cache(cache_capacity: u32, engine_hint: Option<Engine>) -> u64 {
    let tag: u64 = match engine_hint {
        None => 0,
        Some(Engine::Tree) => 1,
        Some(Engine::Bytecode) => 2,
        Some(Engine::Threaded) => 3,
    };
    ((cache_capacity as u64) << 32) | tag
}

fn unpack(sched: u64, cache: u64) -> AdaptConfig {
    AdaptConfig {
        chunk: (sched >> 32) as u32,
        steal_min: sched as u32,
        cache_capacity: (cache >> 32) as u32,
        engine_hint: match cache & 0xffff_ffff {
            1 => Some(Engine::Tree),
            2 => Some(Engine::Bytecode),
            3 => Some(Engine::Threaded),
            _ => None,
        },
    }
}

/// A lock-free, generation-stamped configuration cell (seqlock).
///
/// Readers never block and never allocate; writers serialize on an
/// internal mutex and advance the generation by 2 per published snapshot
/// (odd generations are transient writer-in-progress states). See the
/// module docs for the memory-ordering argument.
pub struct AtomicConfig {
    generation: AtomicU64,
    sched: AtomicU64,
    cache: AtomicU64,
    writer: Mutex<()>,
}

impl Default for AtomicConfig {
    fn default() -> Self {
        Self::new(AdaptConfig::default())
    }
}

impl AtomicConfig {
    /// A cell publishing `initial` at generation 0.
    pub fn new(initial: AdaptConfig) -> Self {
        AtomicConfig {
            generation: AtomicU64::new(0),
            sched: AtomicU64::new(pack_sched(initial.chunk, initial.steal_min)),
            cache: AtomicU64::new(pack_cache(initial.cache_capacity, initial.engine_hint)),
            writer: Mutex::new(()),
        }
    }

    /// Reads a consistent `(generation, config)` snapshot. Lock-free:
    /// retries only while a writer is mid-publish (a handful of stores).
    pub fn load(&self) -> (u64, AdaptConfig) {
        loop {
            let g1 = self.generation.load(Ordering::Acquire);
            if g1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let sched = self.sched.load(Ordering::Acquire);
            let cache = self.cache.load(Ordering::Acquire);
            let g2 = self.generation.load(Ordering::Acquire);
            if g1 == g2 {
                // Generation / 2 is the published-snapshot ordinal.
                return (g1 >> 1, unpack(sched, cache));
            }
        }
    }

    /// Publishes a new snapshot, returning its generation. Writers
    /// serialize; generations advance monotonically by one per publish.
    pub fn store(&self, config: AdaptConfig) -> u64 {
        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Odd = write in progress; readers spin or retry.
        let g = self.generation.load(Ordering::Relaxed);
        self.generation.store(g + 1, Ordering::Release);
        self.sched.store(
            pack_sched(config.chunk, config.steal_min),
            Ordering::Release,
        );
        self.cache.store(
            pack_cache(config.cache_capacity, config.engine_hint),
            Ordering::Release,
        );
        self.generation.store(g + 2, Ordering::Release);
        (g + 2) >> 1
    }

    /// The current published generation (snapshot ordinal).
    pub fn generation(&self) -> u64 {
        self.load().0
    }
}

// The cell is shared process-wide across scheduler workers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AtomicConfig>()
};

/// Process-wide mode: 0 = off, 1 = on, 2 = frozen, +4 bit = explicitly set
/// (wins over the `ENT_ADAPT` environment variable).
static MODE: AtomicUsize = AtomicUsize::new(0);

fn global() -> &'static AtomicConfig {
    static CONFIG: std::sync::OnceLock<AtomicConfig> = std::sync::OnceLock::new();
    CONFIG.get_or_init(AtomicConfig::default)
}

/// The process-wide adaptation mode: the explicit [`set_mode`] value when
/// one was installed, else `ENT_ADAPT` (`on` | `off` | `frozen`), else
/// [`AdaptMode::Off`].
pub fn mode() -> AdaptMode {
    match MODE.load(Ordering::Relaxed) {
        5 => AdaptMode::On,
        6 => AdaptMode::Frozen,
        4 => AdaptMode::Off,
        _ => std::env::var("ENT_ADAPT")
            .ok()
            .and_then(|v| AdaptMode::parse(v.trim()))
            .unwrap_or_default(),
    }
}

/// Installs the process-wide adaptation mode (harness `--adapt` flag).
pub fn set_mode(mode: AdaptMode) {
    let tag = match mode {
        AdaptMode::Off => 4,
        AdaptMode::On => 5,
        AdaptMode::Frozen => 6,
    };
    MODE.store(tag, Ordering::Relaxed);
}

/// Reads the current `(generation, config)` snapshot (lock-free).
pub fn snapshot() -> (u64, AdaptConfig) {
    global().load()
}

/// Pins an explicit scheduler chunk size (harness `--chunk` flag). Takes
/// effect in every mode — an explicit pin is an operator decision, not an
/// adaptation — and bumps the generation like any other publish.
pub fn pin_chunk(chunk: u32) -> u64 {
    let (_, mut cfg) = global().load();
    cfg.chunk = chunk;
    global().store(cfg)
}

/// What one finished batch looked like to the scheduler. All counts are
/// exact (relaxed atomics summed after the barrier at batch end).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchObservation {
    /// Jobs in the batch.
    pub jobs: u64,
    /// Workers the batch ran on.
    pub workers: u64,
    /// The chunk size the batch actually used.
    pub chunk: u64,
    /// Successful steals (block transfers between workers).
    pub steals: u64,
    /// Chunks claimed from own ranges (owner-side grabs).
    pub chunks_claimed: u64,
}

/// Tuner step: refines the scheduler knobs from a finished batch.
/// No-op unless [`mode`] is [`AdaptMode::On`]. Returns the generation the
/// next batch will observe.
///
/// The controller targets a claim rate of 4–32 owner grabs per worker: a
/// batch that fragmented into many tiny grabs doubles the chunk (less
/// claim traffic), one that ran as a handful of coarse grabs halves it
/// (more steal opportunities for skewed job mixes). Bounded to
/// `[1, 4096]`, so a misbehaving signal cannot wedge the scheduler.
pub fn observe_batch(obs: &BatchObservation) -> u64 {
    let cfg = global();
    if mode() != AdaptMode::On || obs.jobs == 0 || obs.workers == 0 {
        return cfg.generation();
    }
    let (_, mut current) = cfg.load();
    let used = obs.chunk.max(1);
    let grabs_per_worker = obs.chunks_claimed.max(1) / obs.workers;
    let mut next = used;
    if grabs_per_worker > 32 {
        next = (used * 2).min(4096);
    } else if grabs_per_worker < 4 && used > 1 {
        next = (used / 2).max(1);
    }
    // Heavy stealing means the job mix is skewed: bias toward finer
    // blocks so thieves find work without draining a victim dry.
    if obs.steals > obs.workers * 4 && next > 1 {
        next = (next / 2).max(1);
    }
    if next != current.chunk as u64 {
        current.chunk = next as u32;
        return cfg.store(current);
    }
    cfg.generation()
}

/// What one finished cache interaction batch looked like.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheObservation {
    /// Lookups served from a shard.
    pub hits: u64,
    /// Lookups that compiled fresh.
    pub misses: u64,
    /// Entries evicted to stay under the per-shard bound.
    pub evictions: u64,
}

/// Tuner step for the lowered-program cache: if evictions are churning
/// (entries evicted and then re-missed), grow capacity up to 4× the
/// default; an idle cache decays back toward the default. No-op unless
/// [`mode`] is [`AdaptMode::On`].
pub fn observe_cache(obs: &CacheObservation) -> u64 {
    let cfg = global();
    if mode() != AdaptMode::On {
        return cfg.generation();
    }
    let (_, mut current) = cfg.load();
    let cap = if current.cache_capacity == 0 {
        DEFAULT_CACHE_CAPACITY
    } else {
        current.cache_capacity
    };
    let mut next = cap;
    if obs.evictions > 0 && obs.misses > obs.hits / 4 {
        next = (cap * 2).min(DEFAULT_CACHE_CAPACITY * 4);
    } else if obs.evictions == 0 && cap > DEFAULT_CACHE_CAPACITY {
        next = (cap / 2).max(DEFAULT_CACHE_CAPACITY);
    }
    if next != cap {
        current.cache_capacity = next;
        return cfg.store(current);
    }
    cfg.generation()
}

/// The engines the tuner ranks. Indexing for the EWMA tables below.
const ENGINE_COUNT: usize = 3;

fn engine_index(engine: Engine) -> usize {
    match engine {
        Engine::Tree => 0,
        Engine::Bytecode => 1,
        Engine::Threaded => 2,
    }
}

fn engine_at(i: usize) -> Engine {
    match i {
        0 => Engine::Tree,
        1 => Engine::Bytecode,
        _ => Engine::Threaded,
    }
}

/// Per-engine exponentially-weighted run-time telemetry, in nanoseconds
/// per interpreter step (scaled ×1024 into the atomic). Indexed by
/// [`engine_index`]: tree, bytecode, threaded.
static ENGINE_EWMA: [AtomicU64; ENGINE_COUNT] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
static ENGINE_SAMPLES: [AtomicU64; ENGINE_COUNT] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

/// Samples an engine needs before its EWMA counts as evidence, and the
/// number of evidenced engines needed before the tuner publishes a hint.
const MIN_ENGINE_SAMPLES: u64 = 3;
const MIN_RANKED_ENGINES: usize = 2;

/// Folds one sample into an EWMA cell value (1/8 weight, never zero so
/// "no data" stays distinguishable).
fn ewma_fold(prev: u64, sample: u64) -> u64 {
    let next = if prev == 0 {
        sample
    } else {
        (prev * 7 + sample) / 8
    };
    next.max(1)
}

/// The fastest engine among those with enough samples, if at least
/// [`MIN_RANKED_ENGINES`] have evidence (comparing one engine against
/// nothing is not a ranking). Ties break toward the lower index.
fn rank(cells: &[(u64, u64); ENGINE_COUNT]) -> Option<Engine> {
    let mut best: Option<(u64, usize)> = None;
    let mut ranked = 0;
    for (j, &(ewma, samples)) in cells.iter().enumerate() {
        if samples >= MIN_ENGINE_SAMPLES {
            ranked += 1;
            if best.is_none_or(|(b, _)| ewma < b) {
                best = Some((ewma, j));
            }
        }
    }
    (ranked >= MIN_RANKED_ENGINES).then(|| engine_at(best.expect("ranked ≥ 2 implies a best").1))
}

/// Feeds one finished run's engine timing to the tuner's *global* table.
/// No-op unless [`mode`] is [`AdaptMode::On`]. Once at least two of the
/// three engines have ≥ 3 samples each, the tuner publishes the fastest
/// as [`AdaptConfig::engine_hint`] (engine choice is value-neutral: the
/// differential harness proves all three engines bit-identical, so the
/// hint can only change timing).
pub fn observe_engine(engine: Engine, steps: u64, wall_nanos: u64) {
    if mode() != AdaptMode::On || steps == 0 {
        return;
    }
    let i = engine_index(engine);
    let sample = (wall_nanos * 1024) / steps.max(1);
    let prev = ENGINE_EWMA[i].load(Ordering::Relaxed);
    ENGINE_EWMA[i].store(ewma_fold(prev, sample), Ordering::Relaxed);
    ENGINE_SAMPLES[i].fetch_add(1, Ordering::Relaxed);
    let mut cells = [(0u64, 0u64); ENGINE_COUNT];
    for (j, cell) in cells.iter_mut().enumerate() {
        *cell = (
            ENGINE_EWMA[j].load(Ordering::Relaxed),
            ENGINE_SAMPLES[j].load(Ordering::Relaxed),
        );
    }
    let Some(faster) = rank(&cells) else {
        return;
    };
    let cfg = global();
    let (_, mut current) = cfg.load();
    if current.engine_hint != Some(faster) {
        current.engine_hint = Some(faster);
        cfg.store(current);
    }
}

/// Shard count for the per-program engine table — mirrors the lowered-
/// program cache's sharding so one program's hint never contends with
/// the whole table.
const PROGRAM_SHARDS: usize = 8;
/// Programs tracked per shard; a shard past the bound drops its
/// accumulated timings (stats, not semantics) and starts over.
const PROGRAM_SHARD_CAP: usize = 128;

type ProgramShard = Mutex<HashMap<u64, [(u64, u64); ENGINE_COUNT]>>;

fn program_shards() -> &'static [ProgramShard; PROGRAM_SHARDS] {
    static SHARDS: OnceLock<[ProgramShard; PROGRAM_SHARDS]> = OnceLock::new();
    SHARDS.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

fn program_shard(fingerprint: u64) -> &'static ProgramShard {
    &program_shards()[(fingerprint as usize) & (PROGRAM_SHARDS - 1)]
}

/// Feeds one finished run's engine timing to the tuner, keyed by the
/// program's source fingerprint (the sharded program-cache key), *and*
/// to the global table. Per-program hints dominate: two programs with
/// opposite engine affinities each get their own answer instead of
/// fighting over one global EWMA. No-op unless [`mode`] is
/// [`AdaptMode::On`].
pub fn observe_engine_for(fingerprint: u64, engine: Engine, steps: u64, wall_nanos: u64) {
    if mode() != AdaptMode::On || steps == 0 {
        return;
    }
    observe_engine(engine, steps, wall_nanos);
    let i = engine_index(engine);
    let sample = (wall_nanos * 1024) / steps.max(1);
    let mut shard = program_shard(fingerprint)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if shard.len() >= PROGRAM_SHARD_CAP && !shard.contains_key(&fingerprint) {
        shard.clear();
    }
    let cells = shard.entry(fingerprint).or_default();
    cells[i].0 = ewma_fold(cells[i].0, sample);
    cells[i].1 += 1;
}

/// The tuner's engine preference for one program (by source
/// fingerprint), falling back to the global hint when this program lacks
/// evidence of its own. `None` unless adaptation is on — `--adapt
/// frozen` keeps every prepared program on its explicit or default
/// engine, generation pinned.
pub fn preferred_engine_for(fingerprint: u64) -> Option<Engine> {
    if mode() != AdaptMode::On {
        return None;
    }
    let shard = program_shard(fingerprint)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(hint) = shard.get(&fingerprint).and_then(rank) {
        return Some(hint);
    }
    drop(shard);
    snapshot().1.engine_hint
}

/// The tuner's current global engine preference, when adaptation is on
/// and it has one. Consumers apply it only below explicit overrides
/// (`--engine`, `ENT_ENGINE`) — and below [`preferred_engine_for`]'s
/// per-program answer when a fingerprint is at hand.
pub fn preferred_engine() -> Option<Engine> {
    if mode() != AdaptMode::On {
        return None;
    }
    snapshot().1.engine_hint
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_round_trips() {
        for (s, m) in [
            ("on", AdaptMode::On),
            ("off", AdaptMode::Off),
            ("frozen", AdaptMode::Frozen),
        ] {
            assert_eq!(AdaptMode::parse(s), Some(m));
            assert_eq!(m.as_str(), s);
        }
        assert_eq!(AdaptMode::parse("warm"), None);
    }

    #[test]
    fn snapshots_round_trip_and_generations_advance() {
        let cell = AtomicConfig::default();
        let (g0, c0) = cell.load();
        assert_eq!(g0, 0);
        assert_eq!(c0, AdaptConfig::default());

        let cfg = AdaptConfig {
            chunk: 16,
            steal_min: 2,
            cache_capacity: 512,
            engine_hint: Some(Engine::Tree),
        };
        let g1 = cell.store(cfg);
        assert_eq!(g1, 1);
        let (g, got) = cell.load();
        assert_eq!((g, got), (1, cfg));

        let g2 = cell.store(AdaptConfig {
            engine_hint: Some(Engine::Bytecode),
            ..cfg
        });
        assert_eq!(g2, 2);
        assert_eq!(cell.load().1.engine_hint, Some(Engine::Bytecode));
    }

    #[test]
    fn observe_batch_is_inert_unless_on() {
        // The global mode in tests is whatever the suite set; force Off
        // explicitly and confirm no generation movement.
        set_mode(AdaptMode::Off);
        let before = snapshot().0;
        let after = observe_batch(&BatchObservation {
            jobs: 1000,
            workers: 4,
            chunk: 1,
            steals: 500,
            chunks_claimed: 1000,
        });
        assert_eq!(before, after);

        set_mode(AdaptMode::Frozen);
        let frozen = observe_batch(&BatchObservation {
            jobs: 1000,
            workers: 4,
            chunk: 1,
            steals: 500,
            chunks_claimed: 1000,
        });
        assert_eq!(frozen, before);
        set_mode(AdaptMode::Off);
    }

    #[test]
    fn controller_bounds_hold() {
        // Pure controller math via a scratch cell: fragmented batches
        // coarsen the chunk, coarse skewed batches refine it, and the
        // result stays within [1, 4096]. Exercised through the public
        // observe_batch path in the scheduler integration tests; here we
        // check the arithmetic cannot escape its clamp.
        let grabs_heavy = std::hint::black_box(100u64); // per worker: way past 32
        assert!(grabs_heavy > 32);
        let at_ceiling = std::hint::black_box(4096u64);
        assert_eq!((at_ceiling * 2).min(4096), 4096);
        let at_floor = std::hint::black_box(1u64);
        assert_eq!((at_floor / 2).max(1), 1);
    }
}
