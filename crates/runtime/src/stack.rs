//! Big-stack scheduling for the recursive evaluator.
//!
//! ENT iteration is recursion-based and the evaluator is recursive, so
//! deep-but-legitimate programs need far more stack than a default thread
//! provides (the explicit `MAX_CALL_DEPTH` guard turns true runaway
//! recursion into `RtError::StackOverflow` long before a big stack is
//! exhausted). Earlier revisions funnelled every run through one hidden
//! global worker thread — a singleton that serialized the whole process
//! onto one core and needed an `unsafe` lifetime transmute to ship
//! borrowed programs across the channel. This module replaces it with a
//! sound, re-entrant primitive:
//!
//! * [`with_interp_stack`] runs a closure on a thread whose stack is at
//!   least the requested size, spawning a scoped worker when the current
//!   thread is not already such a worker. Scoped spawning borrows freely
//!   (no `'static`, no `unsafe`), and every call gets its own worker, so
//!   any number of threads may run interpreters concurrently.
//! * Callers that run *many* programs — the batch engine, the perf
//!   harness — wrap their whole loop in one `with_interp_stack` call:
//!   the worker is marked thread-local, nested calls (including every
//!   [`crate::run_lowered`] inside) detect the mark and run directly on
//!   the current thread, so the per-run cost is zero. That is the
//!   "reusable big-stack worker" of the engine's pool: one scoped spawn
//!   per worker lifetime, not per run.
//!
//! The default stack size is 512 MiB of (lazily committed) virtual
//! memory, overridable per run via [`crate::RuntimeConfig::stack_size`]
//! or process-wide via the `ENT_STACK_SIZE` environment variable
//! (plain bytes, or with a `k`/`m`/`g` suffix, e.g. `ENT_STACK_SIZE=256m`;
//! values are clamped to at least 1 MiB).

use std::cell::Cell;
use std::panic::resume_unwind;
use std::sync::OnceLock;

/// The built-in interpreter stack size: 512 MiB, as the seed interpreter
/// hardcoded. Virtual memory only — pages are committed on first touch.
pub const BUILTIN_STACK_SIZE: usize = 512 * 1024 * 1024;

/// The floor applied to configured stack sizes; smaller values would make
/// the evaluator overflow the host stack before `MAX_CALL_DEPTH` fires.
const MIN_STACK_SIZE: usize = 1024 * 1024;

thread_local! {
    /// Whether the current thread is an interpreter worker: its stack was
    /// sized by [`with_interp_stack`], so nested runs may recurse in place.
    static ON_INTERP_STACK: Cell<bool> = const { Cell::new(false) };
}

/// Parses a stack-size string: plain bytes, or a number with a `k`, `m`,
/// or `g` suffix (case-insensitive, powers of 1024).
///
/// # Example
///
/// ```
/// use ent_runtime::parse_stack_size;
/// assert_eq!(parse_stack_size("1048576"), Some(1024 * 1024));
/// assert_eq!(parse_stack_size("256m"), Some(256 * 1024 * 1024));
/// assert_eq!(parse_stack_size("1G"), Some(1024 * 1024 * 1024));
/// assert_eq!(parse_stack_size("watermelon"), None);
/// ```
#[must_use]
pub fn parse_stack_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: usize = digits.trim().parse().ok()?;
    n.checked_shl(shift)
}

/// The process-wide default interpreter stack size: `ENT_STACK_SIZE` if
/// set and well-formed (see [`parse_stack_size`]), else
/// [`BUILTIN_STACK_SIZE`]. Read once and cached.
#[must_use]
pub fn default_stack_size() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("ENT_STACK_SIZE")
            .ok()
            .and_then(|v| parse_stack_size(&v))
            .unwrap_or(BUILTIN_STACK_SIZE)
            .max(MIN_STACK_SIZE)
    })
}

/// Runs `f` on a thread whose stack is at least `stack_size` bytes.
///
/// If the current thread is already an interpreter worker (a previous
/// `with_interp_stack` frame is on its stack), `f` runs directly — this
/// makes the primitive cheap to nest and lets pool workers amortize one
/// spawn over many runs. Otherwise a scoped worker thread is spawned,
/// `f` runs there while the caller blocks on the join, and panics are
/// re-raised on the calling thread. Fully re-entrant: concurrent callers
/// each get their own worker.
pub fn with_interp_stack<R, F>(stack_size: usize, f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if ON_INTERP_STACK.with(Cell::get) {
        return f();
    }
    let stack_size = stack_size.max(MIN_STACK_SIZE);
    std::thread::scope(|s| {
        let handle = std::thread::Builder::new()
            .name("ent-interp".into())
            .stack_size(stack_size)
            .spawn_scoped(s, move || {
                ON_INTERP_STACK.with(|flag| flag.set(true));
                f()
            })
            .expect("spawning an interpreter worker thread");
        handle.join()
    })
    .unwrap_or_else(|panic| resume_unwind(panic))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_bytes_and_suffixes() {
        assert_eq!(parse_stack_size("4096"), Some(4096));
        assert_eq!(parse_stack_size(" 8k "), Some(8 * 1024));
        assert_eq!(parse_stack_size("3M"), Some(3 * 1024 * 1024));
        assert_eq!(parse_stack_size("2g"), Some(2 * 1024 * 1024 * 1024));
        assert_eq!(parse_stack_size(""), None);
        assert_eq!(parse_stack_size("m"), None);
        assert_eq!(parse_stack_size("-5"), None);
        assert_eq!(parse_stack_size("12.5m"), None);
    }

    #[test]
    fn nested_calls_reuse_the_worker() {
        let outer = with_interp_stack(MIN_STACK_SIZE, || {
            let outer_id = std::thread::current().id();
            let inner_id = with_interp_stack(BUILTIN_STACK_SIZE, || std::thread::current().id());
            (outer_id, inner_id)
        });
        assert_eq!(outer.0, outer.1, "nested call must not respawn");
    }

    #[test]
    fn workers_run_off_the_calling_thread() {
        let caller = std::thread::current().id();
        let worker = with_interp_stack(MIN_STACK_SIZE, || std::thread::current().id());
        assert_ne!(caller, worker);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            with_interp_stack(MIN_STACK_SIZE, || panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn concurrent_callers_each_get_a_worker() {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| s.spawn(move || with_interp_stack(MIN_STACK_SIZE, move || i * 2)))
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                assert_eq!(h.join().unwrap(), i * 2);
            }
        });
    }
}
