//! The register-bytecode dispatch loop: executes [`Code`] compiled by
//! [`crate::compile`] against the same interpreter state
//! ([`Interp`]) as the tree-walking evaluator.
//!
//! Declared as a child module of [`crate::interp`] so it shares the
//! evaluator's private machinery — heap, allocation, invocation, snapshot,
//! mode-case elimination, builtins, events, profiler — verbatim. Only body
//! *evaluation* differs between the engines; every observable action
//! funnels through the same functions, which is what makes the
//! bit-identical-semantics contract structural rather than aspirational.
//!
//! # Control flow
//!
//! A frame's registers live in `Frame::locals`, resized once per call to
//! the compiled `frame_size` (parameter and `let` slots at the indices
//! lowering assigned, scratch above). The loop keeps a local `pc` and a
//! stack of active `try` handlers; a raised [`RtError::EnergyException`]
//! unwinds to the innermost handler (exactly the only error the
//! tree-walker's `Try` catches), every other error — and `return`, which
//! travels as [`Flow::Return`] — exits `exec` for the caller to handle.
//!
//! # Inline caches
//!
//! Per-run caches (vectors on [`Interp`], indexed by program-wide site
//! ids) accelerate the three mode-decision sites:
//!
//! * **Sends** ([`Op::CallM`]): receiver-class guard → cached vtable
//!   entry; any other class falls back to the vtable (and re-caches,
//!   monomorphic-last).
//! * **Eliminations** ([`Op::ElimV`]): `(arms identity, target mode,
//!   energy window)` → selected arm index. The cache holds a strong
//!   `Arc` to the cached arms so pointer identity cannot be recycled.
//! * **Snapshots** ([`Op::Snap`] via [`Interp::snapshot`]): `(class,
//!   produced mode, bounds, energy window)` → bounds-check verdict.
//!
//! The energy window is `floor(virtual time / FaultPlan::window_s)` when
//! fault injection is on (0 otherwise), so caches invalidate on window
//! roll. Crucially the caches only memoize *pure lattice decisions*:
//! attributors — and therefore sensor reads, fault injection, staleness
//! degradation, events, and profiler attribution — run on every
//! evaluation, hit or miss.

use std::sync::Arc;

use ent_syntax::{BinOp, UnOp};

use super::{Enforcement, Frame, Interp, RtTag};
use crate::compile::{Code, Op, Opnd};
use crate::error::{Flow, RtError};
use crate::lower::{GMode, MethodEntry};
use crate::profile::AnyProfiler;
use crate::value::Value;

/// Unboxed arithmetic/comparison fast path: handles the `Int⊕Int` and
/// `Double⊕Double` cases inline so the dispatch loop never leaves its hot
/// code for them. Everything else — string concatenation, mixed operands,
/// division/remainder by zero, type errors — returns `None` and falls back
/// to [`Interp::apply_binop`], which remains the single source of truth
/// for those semantics (this function must agree with it exactly on the
/// cases it does handle).
#[inline(always)]
pub(super) fn binop_fast(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    use BinOp::*;
    Some(match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            Add => Value::Int(a.wrapping_add(*b)),
            Sub => Value::Int(a.wrapping_sub(*b)),
            Mul => Value::Int(a.wrapping_mul(*b)),
            Div if *b != 0 => Value::Int(a.wrapping_div(*b)),
            Rem if *b != 0 => Value::Int(a.wrapping_rem(*b)),
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            _ => return None,
        },
        (Value::Double(a), Value::Double(b)) => match op {
            Add => Value::Double(a + b),
            Sub => Value::Double(a - b),
            Mul => Value::Double(a * b),
            Div => Value::Double(a / b),
            Rem => Value::Double(a % b),
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            _ => return None,
        },
        _ => return None,
    })
}

/// Send-site inline cache: receiver class → resolved vtable entry.
pub(crate) type SendIc<'p> = (u32, &'p MethodEntry);

/// Elimination-site inline cache (see the module docs).
#[derive(Clone, Debug)]
pub(crate) struct ArmIc {
    /// Strong reference: while cached, the allocation cannot be freed and
    /// its address reused, so `Arc::ptr_eq` identity is sound.
    pub(crate) arms: Arc<Vec<(ent_modes::ModeName, Value)>>,
    pub(crate) target: GMode,
    pub(crate) window: u64,
    pub(crate) idx: u32,
}

/// Snapshot-site mode-decision cache: the bounds-check verdict for one
/// `(class, produced mode, lo, hi)` within one energy window.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SnapIc {
    pub(crate) class: u32,
    pub(crate) mode: GMode,
    pub(crate) lo: GMode,
    pub(crate) hi: GMode,
    pub(crate) window: u64,
    pub(crate) failed: bool,
}

impl<'p> Interp<'p> {
    /// Reads a fused-binop operand. Register operands were materialized by
    /// preceding instructions and are consumed (scratch is single-use);
    /// slot operands replicate the unbound-parameter check of `Var`.
    #[inline(always)]
    pub(super) fn read_opnd(
        &self,
        frame: &mut Frame,
        code: &Code,
        o: &Opnd,
    ) -> Result<Value, Flow> {
        match *o {
            Opnd::Reg(r) => Ok(std::mem::replace(
                &mut frame.locals[r as usize],
                Value::Unit,
            )),
            Opnd::Slot { slot, name } => {
                let slot = u32::from(slot);
                if slot >= frame.unbound_lo && slot < frame.n_params {
                    return Err(RtError::Native(format!(
                        "unbound variable `{}`",
                        code.names[name as usize]
                    ))
                    .into());
                }
                Ok(frame.locals[slot as usize].clone())
            }
            Opnd::Cst(k) => Ok(code.consts[k as usize].clone()),
        }
    }

    /// Executes one compiled body to completion. Mirrors `eval` exactly:
    /// `Ok` is the body's value, `Err(Flow::Return)` a `return`
    /// unwinding to the method boundary, `Err(Flow::Error)` a runtime
    /// error (energy exceptions were already routed to any active `try`).
    pub(super) fn exec(&mut self, frame: &mut Frame, code: &'p Code) -> super::EvalResult {
        // The dispatch loop elides tail self-sends by reusing the frame
        // (see `Op::CallM`), bumping `self.depth` once per elided call so
        // the stack guard still counts logical frames. All of those
        // logical frames pop together when this activation exits, on any
        // path — value, `return`, or error.
        let depth_on_entry = self.depth;
        let result = self.exec_loop(frame, code, 0, Vec::new());
        self.depth = depth_on_entry;
        result
    }

    /// Resumes bytecode execution of a live frame at an arbitrary `pc`
    /// with an already-active `try`-handler stack — the threaded engine's
    /// deopt entry point. Sound because threaded code executes the same
    /// compiled `Code` against the same register layout, so the frame and
    /// handler stack carry over unchanged; the caller owns the
    /// `self.depth` save/restore (tail elision may have bumped it).
    pub(super) fn exec_from(
        &mut self,
        frame: &mut Frame,
        code: &'p Code,
        pc: usize,
        tries: Vec<u32>,
    ) -> super::EvalResult {
        self.exec_loop(frame, code, pc, tries)
    }

    fn exec_loop(
        &mut self,
        frame: &mut Frame,
        code: &'p Code,
        entry_pc: usize,
        entry_tries: Vec<u32>,
    ) -> super::EvalResult {
        let mut pc = entry_pc;
        let mut tries: Vec<u32> = entry_tries;

        // Routes an energy exception to the innermost active handler (the
        // only error `try` catches); everything else exits `exec`.
        macro_rules! vtry {
            ($l:lifetime, $e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(f) => {
                        if matches!(&f, Flow::Error(RtError::EnergyException(_))) {
                            if let Some(h) = tries.pop() {
                                pc = h as usize;
                                continue $l;
                            }
                        }
                        return Err(f);
                    }
                }
            };
        }
        macro_rules! take {
            ($r:expr) => {
                std::mem::replace(&mut frame.locals[$r as usize], Value::Unit)
            };
        }
        // Collects `n` consecutive scratch registers into call arguments.
        macro_rules! take_n {
            ($base:expr, $n:expr) => {{
                let base = $base as usize;
                let mut vals = Vec::with_capacity($n as usize);
                for r in base..base + $n as usize {
                    vals.push(take!(r));
                }
                vals
            }};
        }

        'run: loop {
            let i = code.instrs[pc];
            if i.gas != 0 {
                vtry!('run, self.gas_n(u64::from(i.gas)));
            }
            match i.op {
                Op::Const => {
                    frame.locals[i.a as usize] = code.consts[i.d as usize].clone();
                }
                Op::Unit => {
                    frame.locals[i.a as usize] = Value::Unit;
                }
                Op::This => {
                    let Some(r) = frame.this_ref else {
                        return Err(
                            RtError::Native("`this` outside an object context".into()).into()
                        );
                    };
                    frame.locals[i.a as usize] = Value::Obj(r);
                }
                Op::Local => {
                    let slot = u32::from(i.b);
                    if slot >= frame.unbound_lo && slot < frame.n_params {
                        return Err(RtError::Native(format!(
                            "unbound variable `{}`",
                            code.names[i.d as usize]
                        ))
                        .into());
                    }
                    let v = frame.locals[i.b as usize].clone();
                    frame.locals[i.a as usize] = v;
                }
                Op::Unbound => {
                    return Err(RtError::Native(format!(
                        "unbound variable `{}`",
                        code.names[i.d as usize]
                    ))
                    .into());
                }
                Op::FieldGet | Op::FieldThis => {
                    let site = &code.fields[i.d as usize];
                    let r = if i.op == Op::FieldThis {
                        let Some(r) = frame.this_ref else {
                            return Err(
                                RtError::Native("`this` outside an object context".into()).into()
                            );
                        };
                        r
                    } else {
                        match &frame.locals[i.b as usize] {
                            Value::Obj(r) => *r,
                            other => {
                                return Err(RtError::Native(format!(
                                    "field access on a {}",
                                    other.kind()
                                ))
                                .into())
                            }
                        }
                    };
                    let v = vtry!('run, self.read_field(frame, r, site.field, &site.name));
                    frame.locals[i.a as usize] = v;
                }
                Op::NewObj => {
                    let site = &code.news[i.d as usize];
                    let vals = take_n!(i.b, site.n_args);
                    let (mode, env) = vtry!('run, self.resolve_new(frame, site.class, &site.plan));
                    let r = vtry!('run, self.allocate(site.class, vals, mode, env));
                    frame.locals[i.a as usize] = Value::Obj(r);
                }
                Op::NewUnknown => {
                    return Err(RtError::Native(format!(
                        "unknown class `{}`",
                        code.unknown_classes[i.d as usize]
                    ))
                    .into());
                }
                Op::CallM => {
                    let site = &code.calls[i.d as usize];
                    // Tail self-send elision: `return this.m(...)` where the
                    // callee resolves (via the send IC) to the body already
                    // executing reuses this frame — move the arguments into
                    // the parameter slots and restart at pc 0 — instead of
                    // recursing through the full invoke path. Only taken
                    // when that path would have been pure frame bookkeeping:
                    // the compiled `Ret` consuming the call result carries
                    // no gas, the site passes full arity and no mode
                    // arguments, the callee has no attributor / mode
                    // override / mode parameters (so mode env and frame
                    // mode are provably unchanged), the receiver's tag
                    // makes the dfall check pass without side effects, no
                    // `try` handler is live in this frame (its slots would
                    // be clobbered), and the *exact* profiler is not
                    // installed — it charges costs to the innermost frame
                    // as they happen, so it needs every logical
                    // enter/exit. The sampler keeps elision on: the
                    // consuming `Ret` is gasless, so no steps separate
                    // the elided chain's end from its exit hook, and the
                    // chain collapses to one run-length-encoded shadow
                    // frame either way — per-path hit counts (the only
                    // input to the sampled report) are identical with and
                    // without elision. The stack guard still counts the
                    // elided frame via `self.depth`. Only the guarded
                    // strategy may elide: transient counts a check per send,
                    // and a skipped frame would skip its check.
                    'tail: {
                        if !site.this_recv
                            || !site.mode_args.is_empty()
                            || !matches!(self.config.enforcement, Enforcement::Guarded)
                            || self.profiler.as_ref().is_some_and(AnyProfiler::is_exact)
                            || !tries.is_empty()
                        {
                            break 'tail;
                        }
                        let next = code.instrs[pc + 1];
                        if !(next.op == Op::Ret && next.b == i.a && next.gas == 0) {
                            break 'tail;
                        }
                        let Some(recv) = frame.this_ref else {
                            break 'tail;
                        };
                        let Some(Some((cached_class, entry))) = self.ic_send.get(site.ic as usize)
                        else {
                            break 'tail;
                        };
                        let (cached_class, entry) = (*cached_class, *entry);
                        let m = &entry.method;
                        if cached_class != self.heap[recv].class
                            || m.attributor.is_some()
                            || m.mode_override.is_some()
                            || !m.mode_params.is_empty()
                            || u32::from(site.n_args) != m.n_params
                            || !m.body_code.code().is_some_and(|c| std::ptr::eq(c, code))
                        {
                            break 'tail;
                        }
                        let dfall_clean = match self.heap[recv].mode {
                            RtTag::Dynamic => true,
                            RtTag::Ground(g) => g == frame.mode && self.prog.le(g, frame.mode),
                        };
                        if !dfall_clean {
                            break 'tail;
                        }
                        self.depth += 1;
                        if self.depth > self.max_depth {
                            return Err(RtError::StackOverflow.into());
                        }
                        let base = i.b as usize;
                        for k in 0..site.n_args as usize {
                            frame.locals[k] = take!(base + k);
                        }
                        frame.unbound_lo = u32::MAX;
                        pc = 0;
                        continue 'run;
                    }
                    let (recv, arg_base) = if site.this_recv {
                        let Some(r) = frame.this_ref else {
                            return Err(
                                RtError::Native("`this` outside an object context".into()).into()
                            );
                        };
                        (r, u32::from(i.b))
                    } else {
                        match &frame.locals[i.b as usize] {
                            Value::Obj(r) => (*r, u32::from(i.b) + 1),
                            other => {
                                return Err(RtError::Native(format!(
                                    "method call on a {}",
                                    other.kind()
                                ))
                                .into())
                            }
                        }
                    };
                    let mut vals = self.grab_locals(site.n_args as usize);
                    for r in arg_base as usize..(arg_base + u32::from(site.n_args)) as usize {
                        vals.push(take!(r));
                    }
                    let mut gmodes = Vec::with_capacity(site.mode_args.len());
                    for m in &site.mode_args {
                        gmodes.push(vtry!('run, self.resolve_mode(frame, m)));
                    }
                    let v = vtry!('run, self.invoke(
                        recv,
                        site.method,
                        vals,
                        &gmodes,
                        frame.mode,
                        Some(site.ic)
                    ));
                    frame.locals[i.a as usize] = v;
                }
                Op::CallB => {
                    let site = &code.builtins[i.d as usize];
                    let mut vals = take_n!(i.b, site.n_args);
                    if site.force_last {
                        let last = vals.pop().expect("force_last implies an argument");
                        vals.push(vtry!('run, self.force(frame, last)));
                    }
                    let v = vtry!('run, self.builtin(site.op, &site.ns, &site.name, vals));
                    frame.locals[i.a as usize] = v;
                }
                Op::CastV => {
                    let v = take!(i.b);
                    vtry!('run, self.check_cast(&v, &code.casts[i.d as usize]));
                    frame.locals[i.a as usize] = v;
                }
                Op::Snap => {
                    let site = code.snaps[i.d as usize];
                    let v = take!(i.b);
                    let Value::Obj(r) = v else {
                        return Err(RtError::Native(format!("snapshot of a {}", v.kind())).into());
                    };
                    let v = vtry!('run, self.snapshot(frame, r, &site.lo, &site.hi, Some(site.ic)));
                    frame.locals[i.a as usize] = v;
                }
                Op::MakeMCase => {
                    let site = &code.mcases[i.d as usize];
                    let base = i.b as usize;
                    let arms: Vec<(ent_modes::ModeName, Value)> = site
                        .modes
                        .iter()
                        .enumerate()
                        .map(|(k, m)| (m.clone(), take!(base + k)))
                        .collect();
                    frame.locals[i.a as usize] = Value::MCase(Arc::new(arms));
                }
                Op::ElimV => {
                    let site = code.elims[i.d as usize];
                    let v = take!(i.b);
                    let Value::MCase(arms) = v else {
                        return Err(RtError::Native(format!("`<|` on a {}", v.kind())).into());
                    };
                    let target = match site.mode {
                        Some(m) => vtry!('run, self.resolve_mode(frame, &m)),
                        None => frame.mode,
                    };
                    let window = self.decision_window();
                    let s = site.ic as usize;
                    if self.ic_arm.len() <= s {
                        self.ic_arm.resize(s + 1, None);
                    }
                    let hit = match &self.ic_arm[s] {
                        Some(c)
                            if Arc::ptr_eq(&c.arms, &arms)
                                && c.target == target
                                && c.window == window =>
                        {
                            Some(c.idx)
                        }
                        _ => None,
                    };
                    let out = match hit {
                        Some(idx) => arms[idx as usize].1.clone(),
                        None => {
                            let (idx, out) = vtry!('run, self.eliminate_idx(&arms, target));
                            self.ic_arm[s] = Some(ArmIc {
                                arms: Arc::clone(&arms),
                                target,
                                window,
                                idx,
                            });
                            out
                        }
                    };
                    frame.locals[i.a as usize] = out;
                }
                Op::Bin => {
                    let l = take!(i.b);
                    let r = take!(i.c);
                    let r = if matches!(r, Value::MCase(_)) {
                        vtry!('run, self.force(frame, r))
                    } else {
                        r
                    };
                    let v = match binop_fast(code.bins[i.d as usize], &l, &r) {
                        Some(v) => v,
                        None => vtry!('run, self.apply_binop(code.bins[i.d as usize], &l, &r)),
                    };
                    frame.locals[i.a as usize] = v;
                }
                Op::BinF => {
                    let site = &code.fused[i.d as usize];
                    let l = vtry!('run, self.read_opnd(frame, code, &site.lhs));
                    let l = if matches!(l, Value::MCase(_)) {
                        vtry!('run, self.force(frame, l))
                    } else {
                        l
                    };
                    if site.rgas != 0 {
                        vtry!('run, self.gas_n(u64::from(site.rgas)));
                    }
                    let r = vtry!('run, self.read_opnd(frame, code, &site.rhs));
                    let r = if matches!(r, Value::MCase(_)) {
                        vtry!('run, self.force(frame, r))
                    } else {
                        r
                    };
                    let v = match binop_fast(site.op, &l, &r) {
                        Some(v) => v,
                        None => vtry!('run, self.apply_binop(site.op, &l, &r)),
                    };
                    frame.locals[i.a as usize] = v;
                }
                Op::JmpBin => {
                    let l = take!(i.a);
                    let r = take!(i.b);
                    let r = if matches!(r, Value::MCase(_)) {
                        vtry!('run, self.force(frame, r))
                    } else {
                        r
                    };
                    let op = code.bins[i.c as usize];
                    let v = match binop_fast(op, &l, &r) {
                        Some(v) => v,
                        None => vtry!('run, self.apply_binop(op, &l, &r)),
                    };
                    match v {
                        Value::Bool(true) => {}
                        Value::Bool(false) => {
                            pc = i.d as usize;
                            continue 'run;
                        }
                        // Comparisons only ever produce booleans; keep the
                        // guard shape anyway rather than panic.
                        other => {
                            return Err(RtError::Native(format!(
                                "if condition is a {}",
                                other.kind()
                            ))
                            .into())
                        }
                    }
                }
                Op::JmpBinF => {
                    let site = &code.fused[i.a as usize];
                    let l = vtry!('run, self.read_opnd(frame, code, &site.lhs));
                    let l = if matches!(l, Value::MCase(_)) {
                        vtry!('run, self.force(frame, l))
                    } else {
                        l
                    };
                    if site.rgas != 0 {
                        vtry!('run, self.gas_n(u64::from(site.rgas)));
                    }
                    let r = vtry!('run, self.read_opnd(frame, code, &site.rhs));
                    let r = if matches!(r, Value::MCase(_)) {
                        vtry!('run, self.force(frame, r))
                    } else {
                        r
                    };
                    let v = match binop_fast(site.op, &l, &r) {
                        Some(v) => v,
                        None => vtry!('run, self.apply_binop(site.op, &l, &r)),
                    };
                    match v {
                        Value::Bool(true) => {}
                        Value::Bool(false) => {
                            pc = i.d as usize;
                            continue 'run;
                        }
                        other => {
                            return Err(RtError::Native(format!(
                                "if condition is a {}",
                                other.kind()
                            ))
                            .into())
                        }
                    }
                }
                Op::Un => {
                    let v = take!(i.b);
                    let v = vtry!('run, self.force(frame, v));
                    let op = if i.c == 0 { UnOp::Not } else { UnOp::Neg };
                    let out = vtry!('run, Interp::apply_unop(op, v));
                    frame.locals[i.a as usize] = out;
                }
                Op::Jmp => {
                    pc = i.d as usize;
                    continue 'run;
                }
                Op::JmpIfFalse => {
                    let v = take!(i.b);
                    let v = vtry!('run, self.force(frame, v));
                    let Value::Bool(b) = v else {
                        return Err(
                            RtError::Native(format!("if condition is a {}", v.kind())).into()
                        );
                    };
                    if !b {
                        pc = i.d as usize;
                        continue 'run;
                    }
                }
                Op::ScJump => {
                    let op = code.bins[i.c as usize];
                    let v = take!(i.b);
                    let v = vtry!('run, self.force(frame, v));
                    let Value::Bool(b) = v else {
                        return Err(RtError::Native(format!("`{op}` on a {}", v.kind())).into());
                    };
                    frame.locals[i.b as usize] = Value::Bool(b);
                    let short = match op {
                        ent_syntax::BinOp::And => !b,
                        _ => b,
                    };
                    if short {
                        pc = i.d as usize;
                        continue 'run;
                    }
                }
                Op::ScForce => {
                    let op = code.bins[i.c as usize];
                    let v = take!(i.b);
                    let v = vtry!('run, self.force(frame, v));
                    let Value::Bool(b) = v else {
                        return Err(RtError::Native(format!("`{op}` on a {}", v.kind())).into());
                    };
                    frame.locals[i.b as usize] = Value::Bool(b);
                }
                Op::Force => {
                    let v = take!(i.b);
                    let v = vtry!('run, self.force(frame, v));
                    frame.locals[i.b as usize] = v;
                }
                Op::ArrLit => {
                    let vals = take_n!(i.b, i.c);
                    frame.locals[i.a as usize] = Value::Array(Arc::new(vals));
                }
                Op::Ret => {
                    return Err(Flow::Return(take!(i.b)));
                }
                Op::Halt => {
                    return Ok(take!(i.b));
                }
                Op::TryPush => {
                    tries.push(i.d);
                }
                Op::TryPop => {
                    tries.pop();
                }
            }
            pc += 1;
        }
    }
}
