//! The exact per-method energy profiler: flamegraph-style attribution of
//! simulated energy, time, steps, snapshots, and dynamic-check outcomes
//! on the virtual clock.
//!
//! When [`crate::RuntimeConfig::profile`] is
//! [`ProfileMode::Exact`](crate::ProfileMode::Exact), the interpreter
//! maintains a shadow call-stack of `(class id, method id)` frames as a
//! call *tree*: one node per distinct stack path, found or created on
//! method entry. Every cost the interpreter observes — a simulator
//! advance (one delta per advance, taken at the single virtual-time
//! hook), a snapshot, a copy, a failed check — is charged to the
//! innermost frame's node. Steps are attributed by *marks*: the profiler
//! remembers the step counter at the last frame transition and flushes
//! the delta on enter/exit/end-of-run, so the interpreter's per-step path
//! carries no profiler work at all. At the end of the run the tree is
//! folded into:
//!
//! * a per-method **attribution table** ([`Profile::methods`]) with
//!   inclusive and exclusive totals (recursion-safe: a method's inclusive
//!   total counts each dynamic instance once), and
//! * **folded stacks** ([`Profile::folded`]) — `a;b;c <steps>` lines in
//!   the standard flamegraph collapse format, weighted by exclusive
//!   steps.
//!
//! Everything is interned ids until [`Profile::build`] resolves names
//! through the lowered program once, after the run.

use std::collections::HashMap;
use std::fmt::Write as _;

use super::{key, Costs, StackShadow, ROOT_ID};
use crate::lower::LoweredProgram;
use crate::telemetry::{json_escape, json_f64};

/// One node of the call tree: a distinct stack path.
#[derive(Clone, Debug)]
struct PNode {
    parent: u32,
    class: u32,
    method: u32,
    calls: u64,
    own: Costs,
    /// Monomorphic inline cache: the `(class, method)` key and node id of
    /// the child most recently entered from this node. Call sites are
    /// overwhelmingly monomorphic, so this skips the hash probe on the
    /// interpreter's invoke path.
    cache_key: u64,
    cache_node: u32,
}

/// Empty inline-cache sentinel: `key(ROOT_ID, ROOT_ID)`, which no real
/// `(class, method)` pair produces (class ids are dense from 0).
const EMPTY_CACHE: u64 = u64::MAX;

/// The in-run profiler: the shadow stack plus the call tree it grows.
/// All operations are O(1) per event (one hash probe per method entry).
#[derive(Clone, Debug)]
pub(crate) struct Profiler {
    nodes: Vec<PNode>,
    /// `(parent node, (class, method) key) → node`.
    children: HashMap<(u32, u64), u32>,
    /// Shadow stack of node ids; `cur` mirrors the top.
    stack: Vec<u32>,
    cur: u32,
    /// Step counter at the last flush; steps accrue to `cur` lazily.
    steps_mark: u64,
}

impl Profiler {
    pub(crate) fn new() -> Self {
        Profiler {
            nodes: vec![PNode {
                parent: ROOT_ID,
                class: ROOT_ID,
                method: ROOT_ID,
                calls: 1,
                own: Costs::default(),
                cache_key: EMPTY_CACHE,
                cache_node: 0,
            }],
            children: HashMap::new(),
            stack: vec![0],
            cur: 0,
            steps_mark: 0,
        }
    }

    /// Enters a method frame: flushes pending steps to the caller, then
    /// finds or creates the child node for this stack path. `now_steps`
    /// is the interpreter's running step counter.
    #[inline]
    pub(crate) fn enter(&mut self, class: u32, method: u32, now_steps: u64) {
        self.flush(now_steps);
        let parent = self.cur;
        let k = key(class, method);
        let node = if self.nodes[parent as usize].cache_key == k {
            self.nodes[parent as usize].cache_node
        } else {
            self.enter_slow(parent, class, method, k)
        };
        self.nodes[node as usize].calls += 1;
        self.stack.push(node);
        self.cur = node;
    }

    /// Inline-cache miss: the hash probe (and node creation on first
    /// entry), then cache refill.
    #[cold]
    fn enter_slow(&mut self, parent: u32, class: u32, method: u32, k: u64) -> u32 {
        let node = match self.children.entry((parent, k)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.nodes.len() as u32;
                self.nodes.push(PNode {
                    parent,
                    class,
                    method,
                    calls: 0,
                    own: Costs::default(),
                    cache_key: EMPTY_CACHE,
                    cache_node: 0,
                });
                *e.insert(id)
            }
        };
        let p = &mut self.nodes[parent as usize];
        p.cache_key = k;
        p.cache_node = node;
        node
    }

    /// Leaves the innermost method frame, flushing its pending steps.
    pub(crate) fn exit(&mut self, now_steps: u64) {
        self.flush(now_steps);
        self.stack.pop();
        self.cur = *self.stack.last().expect("profiler root frame never pops");
    }

    /// The innermost frame's cost accumulator.
    #[inline]
    pub(crate) fn own(&mut self) -> &mut Costs {
        &mut self.nodes[self.cur as usize].own
    }

    /// Attributes the steps executed since the previous flush to the
    /// innermost frame. Called on frame transitions and once at the end
    /// of the run; the per-step interpreter path never touches the
    /// profiler.
    #[inline]
    pub(crate) fn flush(&mut self, now_steps: u64) {
        let delta = now_steps - self.steps_mark;
        if delta > 0 {
            self.nodes[self.cur as usize].own.steps += delta;
            self.steps_mark = now_steps;
        }
    }

    /// Charges a simulator advance delta to the innermost frame (the
    /// virtual-time hook).
    #[inline]
    pub(crate) fn charge_sim(&mut self, energy_j: f64, time_s: f64) {
        let own = &mut self.nodes[self.cur as usize].own;
        own.energy_j += energy_j;
        own.time_s += time_s;
    }
}

impl StackShadow for Profiler {
    #[inline]
    fn on_enter(&mut self, class: u32, method: u32, steps: u64) {
        self.enter(class, method, steps);
    }

    #[inline]
    fn on_exit(&mut self, steps: u64) {
        self.exit(steps);
    }

    /// The tail of the run (after the last frame transition) belongs to
    /// whatever frame is still open — normally the root.
    fn on_finish(&mut self, steps: u64) {
        self.flush(steps);
    }
}

/// One row of the per-method attribution table, names resolved.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodProfile {
    /// `Class.method`, or `(root)` for the boot frame.
    pub name: String,
    /// Dynamic invocations.
    pub calls: u64,
    /// Costs charged directly to this method's own frames.
    pub exclusive: Costs,
    /// Exclusive plus everything its callees were charged, counting each
    /// dynamic instance once (recursion-safe).
    pub inclusive: Costs,
}

/// The exact profiler's end-of-run report, exposed as
/// [`crate::RunResult::profile`] when [`crate::RuntimeConfig::profile`]
/// is `Exact`.
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Per-method inclusive/exclusive attribution, sorted by descending
    /// inclusive energy, then name (deterministic for fixed programs and
    /// seeds).
    pub methods: Vec<MethodProfile>,
    /// Folded stacks (`Main.main;Agent.work;Site.crawl 1234`), weighted
    /// by exclusive steps, in deterministic (tree-creation) order. Feed
    /// directly to a flamegraph renderer.
    pub folded: Vec<String>,
}

impl Profile {
    /// Folds the call tree into the report, resolving interned ids
    /// through the lowered program.
    pub(crate) fn build(profiler: &Profiler, prog: &LoweredProgram) -> Profile {
        let nodes = &profiler.nodes;
        let n = nodes.len();

        // Per-node inclusive costs: children always have larger indices
        // than their parent (created on first entry under it), so one
        // reverse sweep folds the tree bottom-up.
        let mut inclusive: Vec<Costs> = nodes.iter().map(|nd| nd.own).collect();
        for i in (1..n).rev() {
            let inc = inclusive[i];
            inclusive[nodes[i].parent as usize].add(&inc);
        }

        // Resolve each distinct (class, method) once: deep recursion can
        // grow the tree far past the handful of methods it names.
        let mut names: HashMap<u64, String> = HashMap::new();
        for nd in nodes.iter() {
            names.entry(key(nd.class, nd.method)).or_insert_with(|| {
                if nd.class == ROOT_ID {
                    "(root)".to_string()
                } else {
                    format!(
                        "{}.{}",
                        prog.class_name(nd.class),
                        prog.method_name(nd.method)
                    )
                }
            });
        }

        // Aggregate per (class, method): exclusive sums every node;
        // inclusive sums only nodes with no ancestor of the same key, so
        // recursion is not double-counted.
        let mut order: Vec<u64> = Vec::new();
        let mut agg: HashMap<u64, MethodProfile> = HashMap::new();
        for (i, nd) in nodes.iter().enumerate() {
            let k = key(nd.class, nd.method);
            let entry = agg.entry(k).or_insert_with(|| {
                order.push(k);
                MethodProfile {
                    name: names[&k].clone(),
                    calls: 0,
                    exclusive: Costs::default(),
                    inclusive: Costs::default(),
                }
            });
            entry.calls += nd.calls;
            entry.exclusive.add(&nd.own);
            let mut anc = nd.parent;
            let recursive = loop {
                if anc == ROOT_ID {
                    break false;
                }
                let a = &nodes[anc as usize];
                if key(a.class, a.method) == k {
                    break true;
                }
                anc = a.parent;
            };
            if !recursive {
                entry.inclusive.add(&inclusive[i]);
            }
        }
        let mut methods: Vec<MethodProfile> = order
            .into_iter()
            .map(|k| {
                agg.remove(&k)
                    .expect("every key in `order` was inserted into `agg` in the same sweep")
            })
            .collect();
        methods.sort_by(|a, b| {
            b.inclusive
                .energy_j
                .total_cmp(&a.inclusive.energy_j)
                .then_with(|| a.name.cmp(&b.name))
        });

        // Folded stacks: path strings built top-down (parent paths are
        // always computed before their children).
        let mut paths: Vec<String> = Vec::with_capacity(n);
        let mut folded = Vec::new();
        for (i, nd) in nodes.iter().enumerate() {
            let name = &names[&key(nd.class, nd.method)];
            let path = if i == 0 {
                name.clone()
            } else {
                let parent = &paths[nd.parent as usize];
                let mut s = String::with_capacity(parent.len() + 1 + name.len());
                s.push_str(parent);
                s.push(';');
                s.push_str(name);
                s
            };
            if nd.own.steps > 0 {
                let mut line = String::with_capacity(path.len() + 22);
                line.push_str(&path);
                let _ = write!(line, " {}", nd.own.steps);
                folded.push(line);
            }
            paths.push(path);
        }

        Profile { methods, folded }
    }

    /// The root frame's inclusive costs: the whole run.
    pub fn total(&self) -> Costs {
        self.methods
            .iter()
            .find(|m| m.name == "(root)")
            .map(|m| m.inclusive)
            .unwrap_or_default()
    }

    /// The folded stacks as one newline-terminated string (the exact
    /// input format of flamegraph renderers).
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for line in &self.folded {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Renders the attribution table as fixed-width text (the CLI's
    /// `--profile exact` view).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12} {:>12} {:>11} {:>11} {:>6} {:>6} {:>7}",
            "method",
            "calls",
            "steps(incl)",
            "steps(excl)",
            "J(incl)",
            "J(excl)",
            "snaps",
            "copies",
            "checks!"
        );
        for m in &self.methods {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12} {:>12} {:>11.4} {:>11.4} {:>6} {:>6} {:>7}",
                m.name,
                m.calls,
                m.inclusive.steps,
                m.exclusive.steps,
                m.inclusive.energy_j,
                m.exclusive.energy_j,
                m.exclusive.snapshots,
                m.exclusive.copies,
                m.exclusive.snapshot_failures + m.exclusive.dfall_failures,
            );
        }
        out
    }

    /// The profile as a JSON object (the `profile` key of
    /// [`crate::RunResult::to_json`]). This is the PR 2 schema,
    /// unchanged: consumers of exact-mode telemetry see identical bytes
    /// before and after the sampled mode existed.
    pub fn to_json(&self) -> String {
        let costs = |c: &Costs| -> String {
            format!(
                "{{\"steps\": {}, \"energy_j\": {}, \"time_s\": {}, \"snapshots\": {}, \"copies\": {}, \"snapshot_failures\": {}, \"dfall_failures\": {}, \"dynamic_allocs\": {}, \"sensor_faults\": {}}}",
                c.steps,
                json_f64(c.energy_j),
                json_f64(c.time_s),
                c.snapshots,
                c.copies,
                c.snapshot_failures,
                c.dfall_failures,
                c.dynamic_allocs,
                c.sensor_faults,
            )
        };
        let mut out = String::from("{\"methods\": [");
        for (i, m) in self.methods.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"calls\": {}, \"inclusive\": {}, \"exclusive\": {}}}",
                json_escape(&m.name),
                m.calls,
                costs(&m.inclusive),
                costs(&m.exclusive),
            );
        }
        out.push_str("], \"folded\": [");
        for (i, line) in self.folded.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json_escape(line));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_reuses_nodes_per_stack_path() {
        let mut p = Profiler::new();
        p.enter(0, 0, 0); // a
        p.enter(1, 1, 0); // a;b
        p.exit(0);
        p.enter(1, 1, 0); // a;b again: same node
        p.exit(0);
        p.exit(0);
        assert_eq!(p.nodes.len(), 3);
        assert_eq!(p.nodes[2].calls, 2);
    }

    #[test]
    fn recursion_counts_inclusive_once() {
        // Resolve against a real program: class 0 is `Main`, and `main` is
        // the only interned method.
        let compiled = ent_core::compile("class Main { int main() { return 0; } }").unwrap();
        let prog = crate::lower::lower_program(&compiled);
        let main = prog.main.expect("the test program declares Main.main").1;
        let mut p = Profiler::new();
        p.enter(0, main, 0); // main
        p.enter(0, main, 1); // main;main (recursive): 1 step flushed to outer
        p.exit(3); // 2 more steps flushed to the inner frame
        p.exit(3);
        let profile = Profile::build(&p, &prog);
        // `f` appears twice on the stack but inclusive counts the outer
        // instance only: 3 steps inclusive, 3 exclusive (1 + 2).
        let f = profile
            .methods
            .iter()
            .find(|m| m.calls == 2)
            .expect("the recursive frame");
        assert_eq!(f.inclusive.steps, 3);
        assert_eq!(f.exclusive.steps, 3);
        let root = profile.total();
        assert_eq!(root.steps, 3);
    }
}
