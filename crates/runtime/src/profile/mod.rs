//! Per-method energy attribution, in two modes sharing one shadow-stack
//! discipline:
//!
//! * [`exact`] — the shadow call-*tree* profiler: every cost the
//!   interpreter observes is charged to the innermost frame's node as it
//!   happens. Ground truth, but ~50%+ overhead on the tiny fig6 programs
//!   (BENCH_obs.json) — per-enter tree probes plus per-run report
//!   construction dominate runs that finish in tens of microseconds.
//! * [`sampled`] — the probabilistic profiler: the interpreter maintains
//!   only a flat frame array (push/pop on enter/exit) and, every ~`period`
//!   steps of the deterministic virtual step counter, captures the live
//!   stack once. Sample tallies are scaled to whole-run totals from
//!   [`crate::RunStats`] and reported as per-method *estimates with
//!   Wilson-score confidence intervals*, following the probabilistic
//!   energy profiler for statically typed JVM languages (PAPERS.md).
//!
//! Both modes observe frame transitions through the [`StackShadow`]
//! trait, at identical program points in both engines: the tree walker
//! and the bytecode VM funnel every send through the shared `invoke`
//! path, and bytecode gas batching is exact at observable boundaries, so
//! the `(stack, step-count)` pairs the sampler sees — and therefore every
//! sampled report byte — are identical across `--engine tree|bytecode`
//! and across `--jobs N`.

pub(crate) mod exact;
pub(crate) mod sampled;

pub(crate) use exact::Profiler;
pub use exact::{MethodProfile, Profile};
pub(crate) use sampled::Sampler;
pub use sampled::{SampledMethod, SampledProfile};

/// The metrics charged to one frame (tree node) or aggregated per method.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Costs {
    /// Abstract evaluation steps.
    pub steps: u64,
    /// Simulated energy, in joules (noise-free; noise is applied to the
    /// whole-run measurement, not to attribution).
    pub energy_j: f64,
    /// Virtual time, in seconds.
    pub time_s: f64,
    /// Snapshot expressions evaluated.
    pub snapshots: u64,
    /// Physical snapshot copies.
    pub copies: u64,
    /// Snapshot checks that failed.
    pub snapshot_failures: u64,
    /// Dynamic waterfall checks that failed.
    pub dfall_failures: u64,
    /// Objects allocated with a dynamic mode.
    pub dynamic_allocs: u64,
    /// Sensor reads that came back faulted under fault injection.
    pub sensor_faults: u64,
}

impl Costs {
    pub(crate) fn add(&mut self, other: &Costs) {
        self.steps += other.steps;
        self.energy_j += other.energy_j;
        self.time_s += other.time_s;
        self.snapshots += other.snapshots;
        self.copies += other.copies;
        self.snapshot_failures += other.snapshot_failures;
        self.dfall_failures += other.dfall_failures;
        self.dynamic_allocs += other.dynamic_allocs;
        self.sensor_faults += other.sensor_faults;
    }
}

/// Sentinel class/method id for the root frame (program boot: `Main`
/// allocation and anything outside a method body).
pub(crate) const ROOT_ID: u32 = u32::MAX;

/// Packs a `(class, method)` pair into one map key.
pub(crate) fn key(class: u32, method: u32) -> u64 {
    ((class as u64) << 32) | method as u64
}

/// splitmix64: a strong, cheap stateless mixer — the same recipe the
/// fault injector uses for per-window randomness, here keyed on
/// `(seed, sample index)` so the jittered sample schedule is a pure
/// function of the configuration, never of read order or thread count.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How [`crate::RunResult::profile`] is produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProfileMode {
    /// No attribution; the interpreter pays only a branch per frame.
    #[default]
    Off,
    /// The exact shadow call-tree profiler (ground truth, high overhead).
    Exact,
    /// Periodic stack sampling on the virtual step clock: one capture
    /// every ~`period` steps (jittered in `[period/2, 3·period/2)` by a
    /// splitmix64 stream keyed on `seed` to avoid loop aliasing).
    Sampled {
        /// Mean steps between captures. Clamped to at least 1.
        period: u64,
        /// Jitter-stream seed; same seed + period ⇒ byte-identical report.
        seed: u64,
    },
}

impl ProfileMode {
    /// Default mean sample period, in steps. Chosen so the fig6 suite
    /// (1.2k–9k steps/run) takes a handful of samples per run at <5%
    /// overhead (BENCH_obs.json).
    pub const DEFAULT_SAMPLE_PERIOD: u64 = 256;
    /// Default jitter seed.
    pub const DEFAULT_SAMPLE_SEED: u64 = 0;

    /// `Sampled` with the default period and seed.
    pub fn sampled_default() -> ProfileMode {
        ProfileMode::Sampled {
            period: Self::DEFAULT_SAMPLE_PERIOD,
            seed: Self::DEFAULT_SAMPLE_SEED,
        }
    }

    /// Whether any profiler is installed.
    pub fn is_on(&self) -> bool {
        !matches!(self, ProfileMode::Off)
    }

    /// Parses a CLI/env mode name: `off`, `exact`, or `sampled` (with the
    /// default period/seed; `--sample-period`/`--sample-seed` override).
    pub fn parse(s: &str) -> Option<ProfileMode> {
        match s {
            "off" => Some(ProfileMode::Off),
            "exact" => Some(ProfileMode::Exact),
            "sampled" => Some(ProfileMode::sampled_default()),
            _ => None,
        }
    }

    /// The process-default mode: `ENT_PROFILE` (`off`/`exact`/`sampled`),
    /// or `Off` when unset or unparseable.
    pub fn from_env() -> ProfileMode {
        std::env::var("ENT_PROFILE")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or(ProfileMode::Off)
    }
}

/// The frame-transition discipline both profilers share: the interpreter
/// calls these at method entry, method exit, and end-of-run, passing the
/// deterministic step counter at the boundary. Hooks deliberately carry
/// *only* the step count — everything else a report needs (energy/time
/// totals) arrives once at build time — so the hot path loads one counter
/// and the report can never depend on which engine's boundaries fired.
pub(crate) trait StackShadow {
    /// A method frame opens. `steps` is read *before* the frame is
    /// pushed, so any pending interval belongs to the caller.
    fn on_enter(&mut self, class: u32, method: u32, steps: u64);
    /// The innermost frame closes. `steps` is read *before* the pop, so
    /// any pending interval belongs to the callee.
    fn on_exit(&mut self, steps: u64);
    /// The run ends; settle the tail interval (root frame).
    fn on_finish(&mut self, steps: u64);
}

/// The installed profiler, if any (one enum, no dynamic dispatch: the
/// interpreter's hot path keeps a single predictable branch).
#[derive(Clone, Debug)]
pub(crate) enum AnyProfiler {
    Exact(Profiler),
    Sampled(Sampler),
}

impl AnyProfiler {
    pub(crate) fn new(mode: ProfileMode) -> Option<AnyProfiler> {
        match mode {
            ProfileMode::Off => None,
            ProfileMode::Exact => Some(AnyProfiler::Exact(Profiler::new())),
            ProfileMode::Sampled { period, seed } => {
                Some(AnyProfiler::Sampled(Sampler::new(period, seed)))
            }
        }
    }

    /// The innermost frame's cost accumulator, in exact mode. Sampled
    /// mode ignores per-cost charges (it attributes statistically), so
    /// the charge sites stay one `if let` each.
    #[inline]
    pub(crate) fn own(&mut self) -> Option<&mut Costs> {
        match self {
            AnyProfiler::Exact(p) => Some(p.own()),
            AnyProfiler::Sampled(_) => None,
        }
    }

    /// Whether this is the exact shadow-call-tree profiler. The VM's tail
    /// self-send elision stays enabled under sampling: an elided chain is
    /// consumed by a gasless `Ret`, so no steps accrue between the chain's
    /// end and the exit hook, and the sampler's per-path hit counts — the
    /// only thing its report is built from — are unchanged. Exact mode
    /// still needs real frames (it charges costs to the innermost frame as
    /// they happen), so only it disables the elision.
    #[inline]
    pub(crate) fn is_exact(&self) -> bool {
        matches!(self, AnyProfiler::Exact(_))
    }
}

impl StackShadow for AnyProfiler {
    #[inline]
    fn on_enter(&mut self, class: u32, method: u32, steps: u64) {
        match self {
            AnyProfiler::Exact(p) => p.on_enter(class, method, steps),
            AnyProfiler::Sampled(s) => s.on_enter(class, method, steps),
        }
    }

    #[inline]
    fn on_exit(&mut self, steps: u64) {
        match self {
            AnyProfiler::Exact(p) => p.on_exit(steps),
            AnyProfiler::Sampled(s) => s.on_exit(steps),
        }
    }

    fn on_finish(&mut self, steps: u64) {
        match self {
            AnyProfiler::Exact(p) => p.on_finish(steps),
            AnyProfiler::Sampled(s) => s.on_finish(steps),
        }
    }
}

/// The end-of-run attribution report, exposed as
/// [`crate::RunResult::profile`] when [`crate::RuntimeConfig::profile`]
/// is not `Off`.
#[derive(Clone, Debug, PartialEq)]
pub enum ProfileReport {
    /// Exact shadow-call-tree attribution ([`ProfileMode::Exact`]).
    Exact(Profile),
    /// Statistical estimates with confidence intervals
    /// ([`ProfileMode::Sampled`]).
    Sampled(SampledProfile),
}

impl ProfileReport {
    /// `"exact"` or `"sampled"`.
    pub fn mode(&self) -> &'static str {
        match self {
            ProfileReport::Exact(_) => "exact",
            ProfileReport::Sampled(_) => "sampled",
        }
    }

    /// The exact profile, if this report came from exact mode.
    pub fn as_exact(&self) -> Option<&Profile> {
        match self {
            ProfileReport::Exact(p) => Some(p),
            ProfileReport::Sampled(_) => None,
        }
    }

    /// The sampled profile, if this report came from sampled mode.
    pub fn as_sampled(&self) -> Option<&SampledProfile> {
        match self {
            ProfileReport::Sampled(p) => Some(p),
            ProfileReport::Exact(_) => None,
        }
    }

    /// The attribution table as fixed-width text (the CLI `--profile`
    /// view).
    pub fn render_table(&self) -> String {
        match self {
            ProfileReport::Exact(p) => p.render_table(),
            ProfileReport::Sampled(p) => p.render_table(),
        }
    }

    /// Folded stacks in the flamegraph collapse format — exclusive steps
    /// weights in exact mode, sample counts in sampled mode.
    pub fn folded_stacks(&self) -> String {
        match self {
            ProfileReport::Exact(p) => p.folded_stacks(),
            ProfileReport::Sampled(p) => p.folded_stacks(),
        }
    }

    /// The `profile` value of [`crate::RunResult::to_json`]. Exact mode
    /// keeps the PR 2 schema byte-for-byte (no `mode` key); sampled mode
    /// is self-describing via `"mode": "sampled"`.
    pub fn to_json(&self) -> String {
        match self {
            ProfileReport::Exact(p) => p.to_json(),
            ProfileReport::Sampled(p) => p.to_json(),
        }
    }
}
