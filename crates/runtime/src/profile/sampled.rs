//! The sampling-based probabilistic energy profiler.
//!
//! Instead of the exact profiler's per-enter tree probe, mark flushing,
//! and per-cost charging, the sampler maintains only a flat shadow frame
//! array — one push on method entry, one pop on exit, with direct
//! self-recursion run-length collapsed (see [`Sampler`]) — and captures
//! the live stack whenever the deterministic virtual step counter crosses
//! the next (jittered) sample threshold. Thresholds are only *checked* at
//! frame boundaries, but that loses nothing: between two consecutive
//! boundaries every step runs in a single frame, so an interval that
//! crosses `k` thresholds contributes exactly `k` hits to the one frame
//! that executed it. Step attribution is therefore an unbiased
//! frame-granular estimator. Bytecode gas batching is exact at observable
//! boundaries (see `compile.rs`), and the one place the VM *removes*
//! boundaries — tail self-send elision, which it keeps enabled under
//! sampling — only ever collapses a direct self-recursive chain whose
//! consuming `Ret` carries zero gas. No steps accrue between the chain's
//! end and its exit hook, and the collapsed chain occupies a single
//! run-length-encoded shadow frame anyway, so any threshold crossed
//! inside the chain attributes to the same collapsed path in both
//! engines. Hit tallies — and with hit-share attribution (below), every
//! byte of the report — are identical across engines and worker counts.
//!
//! Sample schedule: the gap between captures is
//! `period/2 + splitmix64(seed, i) % period` for sample index `i` — mean
//! ≈ `period`, range `[period/2, 3·period/2)` — so the schedule is a pure
//! function of `(seed, period)` (bit-reproducible) yet never phase-locks
//! to loop bodies the way a fixed stride would.
//!
//! At end of run, [`SampledProfile::build`] scales hit tallies to the
//! whole-run totals recorded in [`crate::RunStats`] and the simulator
//! accumulators, and attaches 95% Wilson-score confidence intervals to
//! the step estimates. Energy and time are attributed by *hit share*:
//! a method estimated to own `h/n` of the run's steps is estimated to own
//! `h/n` of its energy and time. That assumes energy-per-step is uniform
//! at the sampling quantum (the exact profiler remains the ground truth
//! when per-method power skews), and it is what makes the report a pure
//! function of the hit counts — which in turn is what lets the VM keep
//! its tail self-send elision under sampling: elision moves *frame
//! boundaries*, never step counts at boundaries, so hit tallies (and
//! hence every byte of the report) are engine-invariant even though the
//! engines' accumulator readings at capture points are not.

use std::collections::HashMap;
use std::fmt::Write as _;

use super::{key, splitmix64, StackShadow, ROOT_ID};
use crate::lower::LoweredProgram;
use crate::telemetry::{json_escape, json_f64};

/// One node of the sampled call tree: a distinct stack path that was
/// live at one or more captures (plus its ancestors).
#[derive(Clone, Debug)]
struct SNode {
    parent: u32,
    class: u32,
    method: u32,
    /// Sample hits attributed to this exact stack path.
    hits: u64,
}

/// The in-run sampler: the flat frame array plus the (lazily grown)
/// sample tree. The per-frame cost is a bounds-checked compare on entry
/// and exit; all tree work happens on the ~`steps/period` captures.
///
/// Direct self-recursion is run-length collapsed in the shadow stack: a
/// chain of `Job.step → Job.step → …` occupies one frame with a repeat
/// count. Captured paths therefore name each method once per contiguous
/// self-recursive run, which keeps captures and the report build O(path
/// length) instead of O(recursion depth) — the depth-expanded chains are
/// the exact profiler's job, and statistically every collapsed hit
/// attributes to the same method anyway. The collapse is also what makes
/// VM tail self-send elision invisible here: an elided chain and its
/// hooked tree-walker counterpart both present as one `(class, method)`
/// frame, so captured paths are engine- and worker-count-invariant.
#[derive(Clone, Debug)]
pub(crate) struct Sampler {
    period: u64,
    seed: u64,
    /// Live shadow stack of `(class, method, repeat)` frames (root
    /// excluded); `repeat` run-length encodes direct self-recursion.
    frames: Vec<(u32, u32, u32)>,
    /// Step threshold that triggers the next capture.
    next_at: u64,
    /// Sample index: drives the jitter stream.
    tick: u64,
    /// Total hits recorded.
    samples: u64,
    nodes: Vec<SNode>,
    /// `(parent node, (class, method) key) → node`.
    children: HashMap<(u32, u64), u32>,
}

impl Sampler {
    pub(crate) fn new(period: u64, seed: u64) -> Sampler {
        let mut s = Sampler {
            period: period.max(1),
            seed,
            frames: Vec::new(),
            next_at: 0,
            tick: 0,
            samples: 0,
            nodes: vec![SNode {
                parent: ROOT_ID,
                class: ROOT_ID,
                method: ROOT_ID,
                hits: 0,
            }],
            children: HashMap::new(),
        };
        s.next_at = s.gap();
        s
    }

    /// The next jittered inter-sample gap, in steps: mean ≈ `period`,
    /// range `[period/2, 3·period/2)`, never zero.
    fn gap(&mut self) -> u64 {
        let jitter = splitmix64(self.seed ^ splitmix64(self.tick));
        self.tick += 1;
        (self.period / 2 + jitter % self.period).max(1)
    }

    /// The boundary check: capture iff the step counter crossed the next
    /// threshold since the previous boundary.
    #[inline]
    fn maybe_capture(&mut self, steps: u64) {
        if steps >= self.next_at {
            self.capture(steps);
        }
    }

    /// Records the live stack, with one hit per threshold the interval
    /// crossed (the whole interval ran in the current innermost frame, so
    /// multi-hits attribute exactly).
    #[cold]
    fn capture(&mut self, steps: u64) {
        let mut hits = 0u64;
        while steps >= self.next_at {
            hits += 1;
            let g = self.gap();
            self.next_at += g;
        }
        let mut node = 0u32;
        for i in 0..self.frames.len() {
            let (class, method, _) = self.frames[i];
            node = self.child(node, class, method);
        }
        self.nodes[node as usize].hits += hits;
        self.samples += hits;
    }

    /// Finds or creates the child node for one frame of the captured
    /// path. Parents are always created before their children, so node
    /// indices are topologically ordered (the build sweep relies on it).
    fn child(&mut self, parent: u32, class: u32, method: u32) -> u32 {
        let k = key(class, method);
        match self.children.entry((parent, k)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.nodes.len() as u32;
                self.nodes.push(SNode {
                    parent,
                    class,
                    method,
                    hits: 0,
                });
                *e.insert(id)
            }
        }
    }
}

impl StackShadow for Sampler {
    #[inline]
    fn on_enter(&mut self, class: u32, method: u32, steps: u64) {
        // The interval since the last boundary ran in the caller — check
        // before pushing the callee frame.
        self.maybe_capture(steps);
        match self.frames.last_mut() {
            // Direct self-recursion: bump the run length instead of
            // deepening the shadow stack.
            Some((c, m, repeat)) if *c == class && *m == method => *repeat += 1,
            _ => self.frames.push((class, method, 1)),
        }
    }

    #[inline]
    fn on_exit(&mut self, steps: u64) {
        // The interval ran in the callee — check before popping it.
        self.maybe_capture(steps);
        if let Some((_, _, repeat)) = self.frames.last_mut() {
            *repeat -= 1;
            if *repeat == 0 {
                self.frames.pop();
            }
        }
    }

    fn on_finish(&mut self, steps: u64) {
        // The tail interval belongs to whatever frame is still open —
        // normally the root.
        self.maybe_capture(steps);
    }
}

/// 95% two-sided Wilson score interval for a binomial proportion
/// `hits/n`, as `(lo, hi)` in `[0, 1]`. Deterministic (plain f64
/// arithmetic, no resampling), well-behaved at `hits = 0` and
/// `hits = n`, and wide at small `n` — exactly the honesty a
/// handful-of-samples run needs.
fn wilson_ci(hits: u64, n: u64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    const Z: f64 = 1.959963984540054;
    let nf = n as f64;
    let p = hits as f64 / nf;
    let z2 = Z * Z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (Z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    // Clamp to [0, 1] and force the interval to bracket the point
    // estimate (f64 rounding can otherwise leave `hi` a ulp under `p`
    // at the boundaries).
    (
        (center - half).max(0.0).min(p),
        (center + half).min(1.0).max(p),
    )
}

/// One row of the sampled attribution table, names resolved: statistical
/// estimates scaled to run totals, with 95% CIs on the step estimates.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledMethod {
    /// `Class.method`, or `(root)` for the boot frame.
    pub name: String,
    /// Captures whose innermost frame was this method.
    pub samples_excl: u64,
    /// Captures with this method anywhere on the stack (each capture
    /// counted once under recursion).
    pub samples_incl: u64,
    /// Estimated exclusive steps, `samples_excl/samples · total_steps`.
    pub est_steps_excl: f64,
    /// 95% Wilson CI around [`Self::est_steps_excl`], in steps.
    pub ci_steps_excl: (f64, f64),
    /// Estimated inclusive steps.
    pub est_steps_incl: f64,
    /// 95% Wilson CI around [`Self::est_steps_incl`], in steps.
    pub ci_steps_incl: (f64, f64),
    /// Estimated exclusive energy, in joules: the exclusive hit share of
    /// the whole-run total (uniform energy-per-step assumption).
    pub est_energy_j_excl: f64,
    /// Estimated inclusive energy, in joules.
    pub est_energy_j_incl: f64,
    /// Estimated exclusive virtual time, in seconds.
    pub est_time_s_excl: f64,
    /// Estimated inclusive virtual time, in seconds.
    pub est_time_s_incl: f64,
}

/// The sampler's end-of-run report, exposed as
/// [`crate::RunResult::profile`] when [`crate::RuntimeConfig::profile`]
/// is `Sampled`.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledProfile {
    /// Mean sample period, in steps.
    pub period: u64,
    /// Jitter seed.
    pub seed: u64,
    /// Total captures taken.
    pub samples: u64,
    /// Whole-run step count the estimates are scaled to.
    pub total_steps: u64,
    /// Whole-run noise-free simulated energy, in joules.
    pub total_energy_j: f64,
    /// Whole-run virtual time, in seconds.
    pub total_time_s: f64,
    /// Per-method estimates, sorted by descending inclusive energy
    /// estimate, then name (deterministic for fixed seed/period).
    pub methods: Vec<SampledMethod>,
    /// Folded stacks weighted by *sample counts* (not steps), in
    /// deterministic tree-creation order. Paths name each method once per
    /// contiguous self-recursive run (the sampler collapses direct
    /// self-recursion), unlike the exact profiler's depth-expanded
    /// chains.
    pub folded: Vec<String>,
}

impl SampledProfile {
    /// Scales the sample tallies to run totals and resolves names. With
    /// zero captures (run shorter than the first gap) the report is
    /// empty but well-formed.
    pub(crate) fn build(
        s: &Sampler,
        prog: &LoweredProgram,
        total_steps: u64,
        total_energy_j: f64,
        total_time_s: f64,
    ) -> SampledProfile {
        let n = s.samples;
        let mut report = SampledProfile {
            period: s.period,
            seed: s.seed,
            samples: n,
            total_steps,
            total_energy_j,
            total_time_s,
            methods: Vec::new(),
            folded: Vec::new(),
        };
        if n == 0 {
            return report;
        }
        let nodes = &s.nodes;
        let len = nodes.len();

        // Per-node inclusive hit tallies: parents precede children in
        // index order, so one reverse sweep folds the tree bottom-up.
        let mut incl_hits: Vec<u64> = nodes.iter().map(|nd| nd.hits).collect();
        for i in (1..len).rev() {
            let p = nodes[i].parent as usize;
            incl_hits[p] += incl_hits[i];
        }

        let mut names: HashMap<u64, String> = HashMap::new();
        for nd in nodes.iter() {
            names.entry(key(nd.class, nd.method)).or_insert_with(|| {
                if nd.class == ROOT_ID {
                    "(root)".to_string()
                } else {
                    format!(
                        "{}.{}",
                        prog.class_name(nd.class),
                        prog.method_name(nd.method)
                    )
                }
            });
        }

        // Aggregate per (class, method): exclusive sums every node;
        // inclusive sums only nodes with no ancestor of the same key, so
        // recursion is not double-counted (same walk as the exact build).
        #[derive(Default)]
        struct Agg {
            excl_hits: u64,
            incl_hits: u64,
        }
        let mut order: Vec<u64> = Vec::new();
        let mut agg: HashMap<u64, Agg> = HashMap::new();
        for (i, nd) in nodes.iter().enumerate() {
            let k = key(nd.class, nd.method);
            let entry = agg.entry(k).or_insert_with(|| {
                order.push(k);
                Agg::default()
            });
            entry.excl_hits += nd.hits;
            let mut anc = nd.parent;
            let recursive = loop {
                if anc == ROOT_ID {
                    break false;
                }
                let a = &nodes[anc as usize];
                if key(a.class, a.method) == k {
                    break true;
                }
                anc = a.parent;
            };
            if !recursive {
                entry.incl_hits += incl_hits[i];
            }
        }

        // Everything below is a pure function of the hit counts: steps,
        // energy, and time all scale the same hit shares to their run
        // totals, so the report is independent of where frame boundaries
        // fell between captures (the elision-invariance property the
        // module doc relies on).
        let steps_f = total_steps as f64;
        let nf = n as f64;
        report.methods = order
            .into_iter()
            .map(|k| {
                let a = &agg[&k];
                let (xlo, xhi) = wilson_ci(a.excl_hits, n);
                let (ilo, ihi) = wilson_ci(a.incl_hits, n);
                let (x_share, i_share) = (a.excl_hits as f64 / nf, a.incl_hits as f64 / nf);
                SampledMethod {
                    name: names[&k].clone(),
                    samples_excl: a.excl_hits,
                    samples_incl: a.incl_hits,
                    est_steps_excl: x_share * steps_f,
                    ci_steps_excl: (xlo * steps_f, xhi * steps_f),
                    est_steps_incl: i_share * steps_f,
                    ci_steps_incl: (ilo * steps_f, ihi * steps_f),
                    est_energy_j_excl: x_share * total_energy_j,
                    est_energy_j_incl: i_share * total_energy_j,
                    est_time_s_excl: x_share * total_time_s,
                    est_time_s_incl: i_share * total_time_s,
                }
            })
            .collect();
        report.methods.sort_by(|a, b| {
            b.est_energy_j_incl
                .total_cmp(&a.est_energy_j_incl)
                .then_with(|| a.name.cmp(&b.name))
        });

        // Folded stacks weighted by sample counts, paths built top-down.
        let mut paths: Vec<String> = Vec::with_capacity(len);
        for (i, nd) in nodes.iter().enumerate() {
            let name = &names[&key(nd.class, nd.method)];
            let path = if i == 0 {
                name.clone()
            } else {
                format!("{};{}", paths[nd.parent as usize], name)
            };
            if nd.hits > 0 {
                let mut line = String::with_capacity(path.len() + 22);
                line.push_str(&path);
                let _ = write!(line, " {}", nd.hits);
                report.folded.push(line);
            }
            paths.push(path);
        }

        report
    }

    /// The folded stacks as one newline-terminated string (flamegraph
    /// collapse format; weights are sample counts).
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for line in &self.folded {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Renders the estimate table as fixed-width text (the CLI's
    /// `--profile sampled` view).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sampled profile: {} samples, period {} steps, seed {}",
            self.samples, self.period, self.seed
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>13} {:>25} {:>11}",
            "method", "smp(incl)", "smp(excl)", "~steps(excl)", "95% CI", "~J(excl)"
        );
        for m in &self.methods {
            let ci = format!("[{:.0}, {:.0}]", m.ci_steps_excl.0, m.ci_steps_excl.1);
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>8} {:>13.0} {:>25} {:>11.4}",
                m.name, m.samples_incl, m.samples_excl, m.est_steps_excl, ci, m.est_energy_j_excl,
            );
        }
        out
    }

    /// The profile as a JSON object (the `profile` key of
    /// [`crate::RunResult::to_json`]): self-describing via
    /// `"mode": "sampled"`, with per-method `est_*` estimates and
    /// `ci_lo`/`ci_hi` bounds (exclusive steps; inclusive under the
    /// `_incl` suffix).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"mode\": \"sampled\", \"period\": {}, \"seed\": {}, \"samples\": {}, \"total_steps\": {}, \"methods\": [",
            self.period, self.seed, self.samples, self.total_steps,
        );
        for (i, m) in self.methods.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"samples\": {}, \"samples_incl\": {}, \"est_steps_excl\": {}, \"ci_lo\": {}, \"ci_hi\": {}, \"est_steps_incl\": {}, \"ci_lo_incl\": {}, \"ci_hi_incl\": {}, \"est_energy_j_excl\": {}, \"est_energy_j_incl\": {}, \"est_time_s_excl\": {}, \"est_time_s_incl\": {}}}",
                json_escape(&m.name),
                m.samples_excl,
                m.samples_incl,
                json_f64(m.est_steps_excl),
                json_f64(m.ci_steps_excl.0),
                json_f64(m.ci_steps_excl.1),
                json_f64(m.est_steps_incl),
                json_f64(m.ci_steps_incl.0),
                json_f64(m.ci_steps_incl.1),
                json_f64(m.est_energy_j_excl),
                json_f64(m.est_energy_j_incl),
                json_f64(m.est_time_s_excl),
                json_f64(m.est_time_s_incl),
            );
        }
        out.push_str("], \"folded\": [");
        for (i, line) in self.folded.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json_escape(line));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_schedule_is_a_pure_function_of_seed_and_period() {
        let mut a = Sampler::new(64, 7);
        let mut b = Sampler::new(64, 7);
        let gaps_a: Vec<u64> = (0..32).map(|_| a.gap()).collect();
        let gaps_b: Vec<u64> = (0..32).map(|_| b.gap()).collect();
        assert_eq!(gaps_a, gaps_b);
        // Every gap stays inside the documented window.
        for g in gaps_a {
            assert!((32..96).contains(&g), "gap {g} outside [period/2, 3p/2)");
        }
        // A different seed produces a different schedule.
        let mut c = Sampler::new(64, 8);
        let gaps_c: Vec<u64> = (0..32).map(|_| c.gap()).collect();
        assert_ne!(gaps_b, gaps_c);
    }

    #[test]
    fn period_one_samples_every_step_and_recovers_exact_steps() {
        // period 1 forces a unit gap, so hits == steps per frame and the
        // estimator degenerates to exact frame-granular attribution.
        let compiled = ent_core::compile("class Main { int main() { return 0; } }").unwrap();
        let prog = crate::lower::lower_program(&compiled);
        let main = prog.main.expect("the test program declares Main.main").1;
        let mut s = Sampler::new(1, 0);
        s.on_enter(0, main, 2); // 2 root steps, charged to root
        s.on_exit(12); // 10 steps inside main
        s.on_finish(15); // 3 more root steps
        let p = SampledProfile::build(&s, &prog, 15, 7.5, 3.75);
        assert_eq!(p.samples, 15);
        let root = p.methods.iter().find(|m| m.name == "(root)").unwrap();
        let m = p.methods.iter().find(|m| m.name != "(root)").unwrap();
        assert_eq!(root.samples_excl, 5);
        assert_eq!(m.samples_excl, 10);
        assert_eq!(m.est_steps_excl, 10.0);
        assert_eq!(root.samples_incl, 15);
        assert_eq!(root.est_steps_incl, 15.0);
        // The CI brackets the estimate and the exact value.
        assert!(m.ci_steps_excl.0 <= 10.0 && 10.0 <= m.ci_steps_excl.1);
        // Energy is the hit share of the run total: the root owns all 15
        // hits inclusively, `main` 10 of 15 exclusively.
        assert!((root.est_energy_j_incl - 7.5).abs() < 1e-12);
        assert!((m.est_energy_j_excl - 5.0).abs() < 1e-12);
        // Folded stacks carry sample-count weights.
        assert_eq!(
            p.folded,
            vec!["(root) 5".to_string(), "(root);Main.main 10".to_string()]
        );
    }

    #[test]
    fn wilson_interval_brackets_the_point_estimate() {
        for &(h, n) in &[(0u64, 10u64), (1, 10), (5, 10), (10, 10), (3, 1000)] {
            let (lo, hi) = wilson_ci(h, n);
            let p = h as f64 / n as f64;
            assert!(lo <= p && p <= hi, "({h},{n}): [{lo},{hi}] vs {p}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
        // No samples: total ignorance.
        assert_eq!(wilson_ci(0, 0), (0.0, 1.0));
    }

    #[test]
    fn zero_samples_builds_an_empty_but_wellformed_report() {
        let compiled = ent_core::compile("class Main { int main() { return 0; } }").unwrap();
        let prog = crate::lower::lower_program(&compiled);
        let s = Sampler::new(1_000_000, 0);
        let p = SampledProfile::build(&s, &prog, 3, 0.1, 0.2);
        assert_eq!(p.samples, 0);
        assert!(p.methods.is_empty());
        assert!(p.folded.is_empty());
        assert!(
            crate::telemetry::json_is_valid(&p.to_json()),
            "{}",
            p.to_json()
        );
    }
}
