//! The formal core of ENT: Figure 2's runtime syntax and Figure 5's
//! small-step reduction rules, implemented as a substitution-based
//! reference machine.
//!
//! The production interpreter ([`crate::run`]) is environment/heap-based
//! and extended with primitives, blocks, and builtins; this module is the
//! *paper-faithful* core — Featherweight Java plus ENT's `snapshot`,
//! `check`, closures `cl(m, e)`, mode cases, and elimination — used to
//! validate the implementation:
//!
//! * each reduction rule of Figure 5 is unit-tested in isolation;
//! * the waterfall-preservation corollary is checked on every step of
//!   every reduction sequence (`Machine::run` verifies `dfall` before
//!   applying the messaging rule and records violations);
//! * programs in the overlapping FJ subset are lowered from the surface
//!   AST and must produce structurally identical results under both
//!   semantics (see `lower` and the equivalence tests).

use std::fmt;

use ent_modes::{ClassModeParams, ModeName, ModeTable, StaticMode, Subst};
use ent_syntax::{ClassName, Ident};

/// A runtime mode tag: dynamic objects are untagged.
#[derive(Clone, Debug, PartialEq)]
pub enum FMode {
    /// The dynamic mode `?`.
    Dynamic,
    /// A ground static mode.
    Ground(StaticMode),
}

impl fmt::Display for FMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FMode::Dynamic => f.write_str("?"),
            FMode::Ground(m) => write!(f, "{m}"),
        }
    }
}

/// An object value `obj(α, c⟨µ, ι⟩, v̄)`.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjVal {
    /// The unique ID `α`.
    pub id: u64,
    /// The class `c`.
    pub class: ClassName,
    /// The object's mode `µ`.
    pub mode: FMode,
    /// Ground instantiations of any extra mode parameters.
    pub extra: Vec<StaticMode>,
    /// Field values `v̄` (these are always [`Term`] values).
    pub fields: Vec<Term>,
}

/// A term of the runtime language: Figure 2's expressions plus Figure 5's
/// runtime forms (`obj`, `cl`, `check`).
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// A variable `x` (including `this`, substituted away at calls).
    Var(Ident),
    /// An object value.
    Obj(ObjVal),
    /// A mode name used as a value (the result of an attributor).
    ModeV(ModeName),
    /// A fully evaluated mode case `mcase{m̄ : v̄}`.
    MCaseV(Vec<(ModeName, Term)>),
    /// Field access `e.fd`.
    Field(Box<Term>, Ident),
    /// Object creation `new c⟨ι⟩(ē)` — `mode` is the object's mode
    /// (dynamic for dynamic classes), `extra` the remaining instantiation.
    New {
        /// The class.
        class: ClassName,
        /// The object's own mode (possibly a variable before mode
        /// substitution).
        mode: FMode,
        /// Extra mode arguments.
        extra: Vec<StaticMode>,
        /// Constructor arguments.
        args: Vec<Term>,
    },
    /// Message send `e.md(ē)`.
    Call(Box<Term>, Ident, Vec<Term>),
    /// A cast `(c)e` (mode-erased: the formal bad-cast check is nominal).
    Cast(ClassName, Box<Term>),
    /// `snapshot e [η, η]` with ground bounds.
    Snapshot(Box<Term>, StaticMode, StaticMode),
    /// An unevaluated mode case `mcase{m̄ : ē}`.
    MCase(Vec<(ModeName, Term)>),
    /// Elimination `e ◃ η`.
    Elim(Box<Term>, StaticMode),
    /// `let x = e in e` — the standard FJ-with-let extension, used by the
    /// lowering of surface blocks.
    Let(Ident, Box<Term>, Box<Term>),
    /// A closure `cl(m, e)`: `e` executes under mode `m`.
    Cl(StaticMode, Box<Term>),
    /// `check(e, m₁, m₂, o)`: the attributor body `e` is evaluated; its
    /// mode is then checked against the bounds before the copy is made.
    Check {
        /// The attributor body being evaluated.
        body: Box<Term>,
        /// Lower bound.
        lo: StaticMode,
        /// Upper bound.
        hi: StaticMode,
        /// The snapshotted object.
        obj: ObjVal,
    },
}

impl Term {
    /// Is the term a value (`v ::= o | m | mcase{m̄:v̄}`)?
    pub fn is_value(&self) -> bool {
        match self {
            Term::Obj(_) | Term::ModeV(_) => true,
            Term::MCaseV(arms) => arms.iter().all(|(_, v)| v.is_value()),
            _ => false,
        }
    }

    /// Capture-free value substitution `e{v/x}` (values are closed, so
    /// capture cannot occur).
    pub fn subst(&self, var: &Ident, value: &Term) -> Term {
        match self {
            Term::Var(x) if x == var => value.clone(),
            Term::Var(_) | Term::Obj(_) | Term::ModeV(_) => self.clone(),
            Term::MCaseV(arms) => Term::MCaseV(
                arms.iter()
                    .map(|(m, t)| (m.clone(), t.subst(var, value)))
                    .collect(),
            ),
            Term::Field(e, f) => Term::Field(Box::new(e.subst(var, value)), f.clone()),
            Term::New {
                class,
                mode,
                extra,
                args,
            } => Term::New {
                class: class.clone(),
                mode: mode.clone(),
                extra: extra.clone(),
                args: args.iter().map(|a| a.subst(var, value)).collect(),
            },
            Term::Call(recv, md, args) => Term::Call(
                Box::new(recv.subst(var, value)),
                md.clone(),
                args.iter().map(|a| a.subst(var, value)).collect(),
            ),
            Term::Cast(c, e) => Term::Cast(c.clone(), Box::new(e.subst(var, value))),
            Term::Snapshot(e, lo, hi) => {
                Term::Snapshot(Box::new(e.subst(var, value)), lo.clone(), hi.clone())
            }
            Term::MCase(arms) => Term::MCase(
                arms.iter()
                    .map(|(m, t)| (m.clone(), t.subst(var, value)))
                    .collect(),
            ),
            Term::Elim(e, m) => Term::Elim(Box::new(e.subst(var, value)), m.clone()),
            Term::Let(x, rhs, body) => {
                let rhs = rhs.subst(var, value);
                // Shadowing: an inner binding of the same name hides `var`.
                let body = if x == var {
                    body.as_ref().clone()
                } else {
                    body.subst(var, value)
                };
                Term::Let(x.clone(), Box::new(rhs), Box::new(body))
            }
            Term::Cl(m, e) => Term::Cl(m.clone(), Box::new(e.subst(var, value))),
            Term::Check { body, lo, hi, obj } => Term::Check {
                body: Box::new(body.subst(var, value)),
                lo: lo.clone(),
                hi: hi.clone(),
                obj: obj.clone(),
            },
        }
    }

    /// Point-wise mode-variable substitution (instantiating a class's
    /// generic modes when a method body is fetched).
    pub fn subst_modes(&self, subst: &Subst) -> Term {
        let fix = |m: &StaticMode| m.apply(subst);
        match self {
            Term::Var(_) | Term::Obj(_) | Term::ModeV(_) => self.clone(),
            Term::MCaseV(arms) => Term::MCaseV(
                arms.iter()
                    .map(|(m, t)| (m.clone(), t.subst_modes(subst)))
                    .collect(),
            ),
            Term::Field(e, f) => Term::Field(Box::new(e.subst_modes(subst)), f.clone()),
            Term::New {
                class,
                mode,
                extra,
                args,
            } => Term::New {
                class: class.clone(),
                mode: match mode {
                    FMode::Dynamic => FMode::Dynamic,
                    FMode::Ground(m) => FMode::Ground(fix(m)),
                },
                extra: extra.iter().map(fix).collect(),
                args: args.iter().map(|a| a.subst_modes(subst)).collect(),
            },
            Term::Call(recv, md, args) => Term::Call(
                Box::new(recv.subst_modes(subst)),
                md.clone(),
                args.iter().map(|a| a.subst_modes(subst)).collect(),
            ),
            Term::Cast(c, e) => Term::Cast(c.clone(), Box::new(e.subst_modes(subst))),
            Term::Snapshot(e, lo, hi) => {
                Term::Snapshot(Box::new(e.subst_modes(subst)), fix(lo), fix(hi))
            }
            Term::MCase(arms) => Term::MCase(
                arms.iter()
                    .map(|(m, t)| (m.clone(), t.subst_modes(subst)))
                    .collect(),
            ),
            Term::Elim(e, m) => Term::Elim(Box::new(e.subst_modes(subst)), fix(m)),
            Term::Let(x, rhs, body) => Term::Let(
                x.clone(),
                Box::new(rhs.subst_modes(subst)),
                Box::new(body.subst_modes(subst)),
            ),
            Term::Cl(m, e) => Term::Cl(fix(m), Box::new(e.subst_modes(subst))),
            Term::Check { body, lo, hi, obj } => Term::Check {
                body: Box::new(body.subst_modes(subst)),
                lo: fix(lo),
                hi: fix(hi),
                obj: obj.clone(),
            },
        }
    }
}

/// A method of the formal core: parameter names and a body term.
#[derive(Clone, Debug)]
pub struct FMethod {
    /// The method name.
    pub name: Ident,
    /// Parameter names `x̄`.
    pub params: Vec<Ident>,
    /// The body `e` (mentioning `this` and the parameters).
    pub body: Term,
}

/// A class of the formal core.
#[derive(Clone, Debug)]
pub struct FClass {
    /// The class name.
    pub name: ClassName,
    /// The mode parameter list `∆`.
    pub mode_params: ClassModeParams,
    /// The superclass (`Object` terminates the chain).
    pub superclass: ClassName,
    /// Superclass instantiation (over this class's mode variables).
    pub super_args: Vec<StaticMode>,
    /// Field names, this class's own only (constructor order appends them
    /// after inherited fields).
    pub fields: Vec<Ident>,
    /// Methods.
    pub methods: Vec<FMethod>,
    /// The attributor body (required for dynamic classes).
    pub attributor: Option<Term>,
}

/// A program of the formal core: `P = D C̄`.
#[derive(Clone, Debug)]
pub struct FProgram {
    /// The mode declaration `D`.
    pub modes: ModeTable,
    /// The classes.
    pub classes: Vec<FClass>,
}

impl FProgram {
    /// Looks up a class.
    pub fn class(&self, name: &ClassName) -> Option<&FClass> {
        self.classes.iter().find(|c| &c.name == name)
    }

    /// The paper's `fields(T)`: field names through the chain, inherited
    /// first.
    pub fn fields(&self, class: &ClassName) -> Vec<Ident> {
        let mut chain = Vec::new();
        let mut cur = class.clone();
        while cur != ClassName::object() {
            let Some(decl) = self.class(&cur) else { break };
            chain.push(decl);
            cur = decl.superclass.clone();
        }
        chain.reverse();
        chain
            .into_iter()
            .flat_map(|c| c.fields.iter().cloned())
            .collect()
    }

    /// The paper's `mbody`: walks the chain, accumulating the mode
    /// substitution through superclass instantiations.
    pub fn mbody(
        &self,
        class: &ClassName,
        method: &Ident,
        subst: Subst,
    ) -> Option<(FMethod, Subst)> {
        let decl = self.class(class)?;
        if let Some(m) = decl.methods.iter().find(|m| &m.name == method) {
            return Some((m.clone(), subst));
        }
        if decl.superclass == ClassName::object() {
            return None;
        }
        let sup = self.class(&decl.superclass)?;
        let sup_params = sup.mode_params.params();
        let args: Vec<StaticMode> = decl.super_args.iter().map(|m| m.apply(&subst)).collect();
        self.mbody(&decl.superclass, method, Subst::bind(&sup_params, &args))
    }
}

/// An error that stops the formal machine.
#[derive(Clone, Debug, PartialEq)]
pub enum FormalError {
    /// A *bad check*: the snapshot's attributor produced a mode outside
    /// the declared bounds (Definition 4).
    BadCheck(String),
    /// A *bad cast* (Definition 3).
    BadCast(String),
    /// The dynamic waterfall invariant failed at a messaging redex —
    /// impossible for well-typed programs (Corollary 1).
    DfallViolation(String),
    /// A genuinely stuck term: the soundness theorem says this never
    /// happens for well-typed programs.
    Stuck(String),
    /// Fuel exhausted (the stand-in for divergence).
    OutOfFuel,
}

impl fmt::Display for FormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormalError::BadCheck(s) => write!(f, "bad check: {s}"),
            FormalError::BadCast(s) => write!(f, "bad cast: {s}"),
            FormalError::DfallViolation(s) => write!(f, "dfall violation: {s}"),
            FormalError::Stuck(s) => write!(f, "stuck: {s}"),
            FormalError::OutOfFuel => f.write_str("out of fuel"),
        }
    }
}

/// The small-step machine for Figure 5.
pub struct Machine<'a> {
    program: &'a FProgram,
    next_id: u64,
    /// Lazy-copy metadata mirroring the production runtime is *not*
    /// modeled: the formal rule always produces a fresh `obj(α', …)`.
    steps: u64,
}

impl<'a> Machine<'a> {
    /// Creates a machine for a program.
    pub fn new(program: &'a FProgram) -> Self {
        Machine {
            program,
            next_id: 0,
            steps: 0,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn fresh(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn le(&self, a: &StaticMode, b: &StaticMode) -> bool {
        self.program.modes.le_ground(a, b)
    }

    /// `boot(P) = cl(⊤, e)` where `e = mbody(main, Main⟨⊤⟩)` applied to a
    /// fresh `Main` object.
    pub fn boot(&mut self) -> Result<Term, FormalError> {
        let main = ClassName::new("Main");
        let Some((method, subst)) = self.program.mbody(&main, &Ident::new("main"), Subst::new())
        else {
            return Err(FormalError::Stuck("no Main.main".into()));
        };
        let this = Term::Obj(ObjVal {
            id: self.fresh(),
            class: main,
            mode: FMode::Ground(StaticMode::Top),
            extra: Vec::new(),
            fields: Vec::new(),
        });
        let body = method
            .body
            .subst_modes(&subst)
            .subst(&Ident::new("this"), &this);
        Ok(Term::Cl(StaticMode::Top, Box::new(body)))
    }

    /// Runs a term to a value under mode `m`, with a fuel bound.
    pub fn run(
        &mut self,
        mut term: Term,
        mode: &StaticMode,
        fuel: u64,
    ) -> Result<Term, FormalError> {
        for _ in 0..fuel {
            if term.is_value() {
                return Ok(term);
            }
            term = self.step(term, mode)?;
            self.steps += 1;
        }
        if term.is_value() {
            Ok(term)
        } else {
            Err(FormalError::OutOfFuel)
        }
    }

    /// One reduction step `e =m⇒ e'` (Figure 5 plus the standard
    /// congruence rules, left-to-right call-by-value).
    pub fn step(&mut self, term: Term, mode: &StaticMode) -> Result<Term, FormalError> {
        match term {
            v if v.is_value() => Ok(v),

            // Congruence into closures: the body steps under the closure's
            // own mode; a finished closure collapses to its value. A body
            // that is itself a closure replaces the outer one (the inner
            // mode governs until it finishes and the value would collapse
            // both anyway) — this tail-call collapse keeps the term from
            // growing without bound under recursion.
            Term::Cl(m, body) => {
                if body.is_value() || matches!(body.as_ref(), Term::Cl(_, _)) {
                    Ok(*body)
                } else {
                    let stepped = self.step(*body, &m)?;
                    Ok(Term::Cl(m, Box::new(stepped)))
                }
            }

            Term::Field(recv, fd) => {
                if let Term::Obj(o) = recv.as_ref() {
                    let names = self.program.fields(&o.class);
                    match names.iter().position(|n| n == &fd) {
                        Some(i) => Ok(o.fields[i].clone()),
                        None => Err(FormalError::Stuck(format!(
                            "class `{}` has no field `{fd}`",
                            o.class
                        ))),
                    }
                } else {
                    let stepped = self.step(*recv, mode)?;
                    Ok(Term::Field(Box::new(stepped), fd))
                }
            }

            Term::New {
                class,
                mode: omode,
                extra,
                args,
            } => {
                // Evaluate constructor arguments left to right.
                if let Some(i) = args.iter().position(|a| !a.is_value()) {
                    let mut args = args;
                    let stepped = self.step(args[i].clone(), mode)?;
                    args[i] = stepped;
                    return Ok(Term::New {
                        class,
                        mode: omode,
                        extra,
                        args,
                    });
                }
                let expected = self.program.fields(&class).len();
                if args.len() != expected {
                    return Err(FormalError::Stuck(format!(
                        "new `{class}`: {} arguments for {expected} fields",
                        args.len()
                    )));
                }
                Ok(Term::Obj(ObjVal {
                    id: self.fresh(),
                    class,
                    mode: omode,
                    extra,
                    fields: args,
                }))
            }

            // The messaging rule:
            //   o.md(v̄) =m⇒ cl(µ, e{v̄/x̄}{o/this})   if dfall(o, m)
            Term::Call(recv, md, args) => {
                if !recv.is_value() {
                    let stepped = self.step(*recv, mode)?;
                    return Ok(Term::Call(Box::new(stepped), md, args));
                }
                if let Some(i) = args.iter().position(|a| !a.is_value()) {
                    let mut args = args;
                    let stepped = self.step(args[i].clone(), mode)?;
                    args[i] = stepped;
                    return Ok(Term::Call(recv, md, args));
                }
                let Term::Obj(o) = recv.as_ref() else {
                    return Err(FormalError::Stuck(format!("call `{md}` on a non-object")));
                };
                // dfall(o, m): omode(o) must be ground and ≤ m.
                let receiver_mode = match &o.mode {
                    FMode::Ground(g) => g.clone(),
                    FMode::Dynamic => {
                        return Err(FormalError::DfallViolation(format!(
                            "message `{md}` to a dynamic object of `{}`",
                            o.class
                        )))
                    }
                };
                if !self.le(&receiver_mode, mode) {
                    return Err(FormalError::DfallViolation(format!(
                        "receiver mode `{receiver_mode}` above sender mode `{mode}` for `{md}`"
                    )));
                }
                let class_subst = self.object_subst(o);
                let Some((method, msubst)) = self.program.mbody(&o.class, &md, class_subst) else {
                    return Err(FormalError::Stuck(format!(
                        "class `{}` has no method `{md}`",
                        o.class
                    )));
                };
                if method.params.len() != args.len() {
                    return Err(FormalError::Stuck(format!("arity mismatch at `{md}`")));
                }
                let mut body = method
                    .body
                    .subst_modes(&msubst)
                    .subst(&Ident::new("this"), recv.as_ref());
                for (x, v) in method.params.iter().zip(&args) {
                    body = body.subst(x, v);
                }
                Ok(Term::Cl(receiver_mode, Box::new(body)))
            }

            Term::Cast(target, e) => {
                if let Term::Obj(o) = e.as_ref() {
                    if self.is_subclass(&o.class, &target) {
                        Ok(*e)
                    } else {
                        Err(FormalError::BadCast(format!(
                            "`{}` is not a `{target}`",
                            o.class
                        )))
                    }
                } else {
                    let stepped = self.step(*e, mode)?;
                    Ok(Term::Cast(target, Box::new(stepped)))
                }
            }

            // The snapshot rule:
            //   snapshot o [m₁, m₂] =m⇒ check(abody{o/this}, m₁, m₂, o)
            //     if µ = ?
            Term::Snapshot(e, lo, hi) => {
                if let Term::Obj(o) = e.as_ref() {
                    if o.mode != FMode::Dynamic {
                        return Err(FormalError::Stuck(format!(
                            "snapshot of a non-dynamic object of `{}`",
                            o.class
                        )));
                    }
                    let Some(decl) = self.program.class(&o.class) else {
                        return Err(FormalError::Stuck(format!("unknown class `{}`", o.class)));
                    };
                    let Some(abody) = &decl.attributor else {
                        return Err(FormalError::Stuck(format!(
                            "class `{}` has no attributor",
                            o.class
                        )));
                    };
                    let body = abody
                        .subst_modes(&self.object_subst(o))
                        .subst(&Ident::new("this"), e.as_ref());
                    Ok(Term::Check {
                        body: Box::new(body),
                        lo,
                        hi,
                        obj: o.clone(),
                    })
                } else {
                    let stepped = self.step(*e, mode)?;
                    Ok(Term::Snapshot(Box::new(stepped), lo, hi))
                }
            }

            // The check rule:
            //   check(m', m₁, m₂, o) =m⇒ obj(α', c⟨m', ι⟩, v̄)
            //     if ∅ ⊨ {m₁ ≤ m', m' ≤ m₂}, α' fresh
            Term::Check { body, lo, hi, obj } => {
                if let Term::ModeV(m) = body.as_ref() {
                    let produced = StaticMode::Const(m.clone());
                    if self.le(&lo, &produced) && self.le(&produced, &hi) {
                        Ok(Term::Obj(ObjVal {
                            id: self.fresh(),
                            class: obj.class,
                            mode: FMode::Ground(produced),
                            extra: obj.extra,
                            fields: obj.fields,
                        }))
                    } else {
                        Err(FormalError::BadCheck(format!(
                            "mode `{produced}` outside [{lo}, {hi}] for `{}`",
                            obj.class
                        )))
                    }
                } else if body.is_value() {
                    Err(FormalError::Stuck("attributor produced a non-mode".into()))
                } else {
                    let stepped = self.step(*body, mode)?;
                    Ok(Term::Check {
                        body: Box::new(stepped),
                        lo,
                        hi,
                        obj,
                    })
                }
            }

            Term::MCase(arms) => {
                if let Some(i) = arms.iter().position(|(_, t)| !t.is_value()) {
                    let mut arms = arms;
                    let stepped = self.step(arms[i].1.clone(), mode)?;
                    arms[i].1 = stepped;
                    return Ok(Term::MCase(arms));
                }
                Ok(Term::MCaseV(arms))
            }

            // Elimination: mcase{m̄:v̄} ◃ η → vᵢ with mᵢ = η.
            Term::Elim(e, target) => {
                if let Term::MCaseV(arms) = e.as_ref() {
                    match arms
                        .iter()
                        .find(|(m, _)| StaticMode::Const(m.clone()) == target)
                    {
                        Some((_, v)) => Ok(v.clone()),
                        None => Err(FormalError::Stuck(format!(
                            "no mode case arm for `{target}`"
                        ))),
                    }
                } else {
                    let stepped = self.step(*e, mode)?;
                    Ok(Term::Elim(Box::new(stepped), target))
                }
            }

            // let x = v in e  ⟶  e{v/x}
            Term::Let(x, rhs, body) => {
                if rhs.is_value() {
                    Ok(body.subst(&x, &rhs))
                } else {
                    let stepped = self.step(*rhs, mode)?;
                    Ok(Term::Let(x, Box::new(stepped), body))
                }
            }

            Term::Var(x) => Err(FormalError::Stuck(format!("free variable `{x}`"))),
            other => Err(FormalError::Stuck(format!("no rule for {other:?}"))),
        }
    }

    /// The substitution binding a class's mode parameters to an object's
    /// ground instantiation (the internal view of a dynamic object leaves
    /// its first parameter free until snapshot).
    fn object_subst(&self, o: &ObjVal) -> Subst {
        let Some(decl) = self.program.class(&o.class) else {
            return Subst::new();
        };
        let params = decl.mode_params.params();
        let mut flat = Vec::new();
        if let FMode::Ground(m) = &o.mode {
            flat.push(m.clone());
        } else if let Some(first) = params.first() {
            flat.push(StaticMode::Var(first.clone()));
        }
        flat.extend(o.extra.iter().cloned());
        Subst::bind(&params, &flat)
    }

    fn is_subclass(&self, c: &ClassName, d: &ClassName) -> bool {
        if d == &ClassName::object() {
            return true;
        }
        let mut cur = c.clone();
        loop {
            if &cur == d {
                return true;
            }
            match self.program.class(&cur) {
                Some(decl) if decl.superclass != ClassName::object() => {
                    cur = decl.superclass.clone();
                }
                Some(_) => return false,
                None => return false,
            }
        }
    }
}

/// Erases object identities for structural comparison between the formal
/// machine and the production interpreter.
pub fn canonicalize(term: &Term) -> Term {
    match term {
        Term::Obj(o) => Term::Obj(ObjVal {
            id: 0,
            class: o.class.clone(),
            mode: o.mode.clone(),
            extra: o.extra.clone(),
            fields: o.fields.iter().map(canonicalize).collect(),
        }),
        Term::MCaseV(arms) => Term::MCaseV(
            arms.iter()
                .map(|(m, v)| (m.clone(), canonicalize(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Convenience constructors used by tests and the lowering.
pub mod build {
    use super::*;

    /// A ground mode constant.
    pub fn mc(name: &str) -> StaticMode {
        StaticMode::Const(ModeName::new(name))
    }

    /// A variable reference.
    pub fn var(name: &str) -> Term {
        Term::Var(Ident::new(name))
    }

    /// `this`.
    pub fn this() -> Term {
        Term::Var(Ident::new("this"))
    }

    /// Field access.
    pub fn field(recv: Term, name: &str) -> Term {
        Term::Field(Box::new(recv), Ident::new(name))
    }

    /// Message send.
    pub fn call(recv: Term, method: &str, args: Vec<Term>) -> Term {
        Term::Call(Box::new(recv), Ident::new(method), args)
    }

    /// Static-mode object creation.
    pub fn new_static(class: &str, mode: StaticMode, args: Vec<Term>) -> Term {
        Term::New {
            class: ClassName::new(class),
            mode: FMode::Ground(mode),
            extra: Vec::new(),
            args,
        }
    }

    /// Dynamic object creation.
    pub fn new_dynamic(class: &str, args: Vec<Term>) -> Term {
        Term::New {
            class: ClassName::new(class),
            mode: FMode::Dynamic,
            extra: Vec::new(),
            args,
        }
    }

    /// A snapshot with bounds.
    pub fn snapshot(e: Term, lo: StaticMode, hi: StaticMode) -> Term {
        Term::Snapshot(Box::new(e), lo, hi)
    }

    /// A mode case literal.
    pub fn mcase(arms: Vec<(&str, Term)>) -> Term {
        Term::MCase(
            arms.into_iter()
                .map(|(m, t)| (ModeName::new(m), t))
                .collect(),
        )
    }

    /// Elimination at a ground mode.
    pub fn elim(e: Term, mode: StaticMode) -> Term {
        Term::Elim(Box::new(e), mode)
    }

    /// A mode value.
    pub fn modev(name: &str) -> Term {
        Term::ModeV(ModeName::new(name))
    }

    /// A method.
    pub fn method(name: &str, params: &[&str], body: Term) -> FMethod {
        FMethod {
            name: Ident::new(name),
            params: params.iter().map(|p| Ident::new(*p)).collect(),
            body,
        }
    }
}

/// Lowers the overlapping FJ subset of a surface program into the formal
/// core, for differential testing. Returns `None` when the program uses
/// extensions outside the core (primitives, blocks with `let`, builtins,
/// `try`, method-level modes, field initializers).
pub fn lower(program: &ent_syntax::Program) -> Option<FProgram> {
    use ent_syntax::{ExprKind, Stmt};

    fn lower_expr(e: &ent_syntax::Expr) -> Option<Term> {
        Some(match &e.kind {
            ExprKind::Var(x) => Term::Var(x.clone()),
            ExprKind::This => Term::Var(Ident::new("this")),
            ExprKind::ModeConst(m) => Term::ModeV(m.clone()),
            ExprKind::Field { recv, name } => {
                Term::Field(Box::new(lower_expr(recv)?), name.clone())
            }
            ExprKind::New {
                class,
                args,
                ctor_args,
            } => {
                let (mode, extra) = match args {
                    Some(a) if a.is_dynamic() => (FMode::Dynamic, a.rest.clone()),
                    Some(a) => match a.mode.as_static() {
                        Some(m) => (FMode::Ground(m.clone()), a.rest.clone()),
                        None => return None,
                    },
                    None => (FMode::Dynamic, Vec::new()),
                };
                Term::New {
                    class: class.clone(),
                    mode,
                    extra,
                    args: ctor_args
                        .iter()
                        .map(lower_expr)
                        .collect::<Option<Vec<_>>>()?,
                }
            }
            ExprKind::Call {
                recv,
                method,
                mode_args,
                args,
            } if mode_args.is_empty() => Term::Call(
                Box::new(lower_expr(recv)?),
                method.clone(),
                args.iter().map(lower_expr).collect::<Option<Vec<_>>>()?,
            ),
            ExprKind::Cast { ty, expr } => {
                let ent_syntax::Type::Object { class, .. } = ty else {
                    return None;
                };
                Term::Cast(class.clone(), Box::new(lower_expr(expr)?))
            }
            ExprKind::Snapshot { expr, lo, hi } => {
                Term::Snapshot(Box::new(lower_expr(expr)?), lo.clone(), hi.clone())
            }
            ExprKind::MCase { arms, .. } => Term::MCase(
                arms.iter()
                    .map(|(m, a)| Some((m.clone(), lower_expr(a)?)))
                    .collect::<Option<Vec<_>>>()?,
            ),
            ExprKind::Elim {
                expr,
                mode: Some(m),
            } => Term::Elim(Box::new(lower_expr(expr)?), m.clone()),
            // Blocks lower to nested lets; the trailing statement is the
            // result.
            ExprKind::Block(stmts) => lower_block(stmts)?,
            _ => return None,
        })
    }

    fn lower_block(stmts: &[Stmt]) -> Option<Term> {
        match stmts {
            [Stmt::Return(inner)] | [Stmt::Expr(inner)] => lower_expr(inner),
            [Stmt::Let { name, value, .. }, rest @ ..] if !rest.is_empty() => Some(Term::Let(
                name.clone(),
                Box::new(lower_expr(value)?),
                Box::new(lower_block(rest)?),
            )),
            [Stmt::Expr(inner), rest @ ..] if !rest.is_empty() => Some(Term::Let(
                Ident::new("$ignored"),
                Box::new(lower_expr(inner)?),
                Box::new(lower_block(rest)?),
            )),
            _ => None,
        }
    }

    let classes = program
        .classes
        .iter()
        .map(|c| {
            if c.fields.iter().any(|f| f.init.is_some()) {
                return None;
            }
            Some(FClass {
                name: c.name.clone(),
                mode_params: c.mode_params.clone(),
                superclass: c.superclass.clone(),
                super_args: c.super_args.clone(),
                fields: c.fields.iter().map(|f| f.name.clone()).collect(),
                methods: c
                    .methods
                    .iter()
                    .map(|m| {
                        if m.mode.is_some() || m.attributor.is_some() || !m.mode_params.is_empty() {
                            return None;
                        }
                        Some(FMethod {
                            name: m.name.clone(),
                            params: m.params.iter().map(|(_, x)| x.clone()).collect(),
                            body: lower_expr(&m.body)?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?,
                attributor: match &c.attributor {
                    Some(a) => Some(lower_expr(&a.body)?),
                    None => None,
                },
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FProgram {
        modes: program.mode_table.clone(),
        classes,
    })
}

/// Used by the equivalence tests: an object-free rendering of a value for
/// comparison with the production interpreter's [`crate::Value`].
pub fn describe_value(program: &FProgram, term: &Term) -> String {
    match term {
        Term::Obj(o) => {
            let names = program.fields(&o.class);
            let fields: Vec<String> = names
                .iter()
                .zip(&o.fields)
                .map(|(n, v)| format!("{n}={}", describe_value(program, v)))
                .collect();
            format!("{}@{}{{{}}}", o.class, o.mode, fields.join(","))
        }
        Term::ModeV(m) => m.to_string(),
        Term::MCaseV(arms) => {
            let parts: Vec<String> = arms
                .iter()
                .map(|(m, v)| format!("{m}:{}", describe_value(program, v)))
                .collect();
            format!("mcase{{{}}}", parts.join(";"))
        }
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use ent_modes::ModeVar;

    fn two_mode_table() -> ModeTable {
        ModeTable::linear(["low", "high"]).unwrap()
    }

    /// A tiny formal program: a dynamic Probe whose attributor returns a
    /// stored mode value, and a Reader that projects its tag.
    fn probe_program() -> FProgram {
        FProgram {
            modes: two_mode_table(),
            classes: vec![
                FClass {
                    name: ClassName::new("Probe"),
                    mode_params: ClassModeParams::dynamic(vec![ent_modes::Bounded::unconstrained(
                        ModeVar::new("P"),
                    )]),
                    superclass: ClassName::object(),
                    super_args: vec![],
                    fields: vec![Ident::new("level"), Ident::new("tag")],
                    methods: vec![method(
                        "read",
                        &[],
                        elim(field(this(), "tag"), StaticMode::Var(ModeVar::new("P"))),
                    )],
                    attributor: Some(field(this(), "level")),
                },
                FClass {
                    name: ClassName::new("Main"),
                    mode_params: ClassModeParams::neutral(),
                    superclass: ClassName::object(),
                    super_args: vec![],
                    fields: vec![],
                    methods: vec![method(
                        "main",
                        &[],
                        call(
                            snapshot(
                                new_dynamic(
                                    "Probe",
                                    vec![
                                        modev("high"),
                                        mcase(vec![("low", modev("low")), ("high", modev("high"))]),
                                    ],
                                ),
                                StaticMode::Bot,
                                StaticMode::Top,
                            ),
                            "read",
                            vec![],
                        ),
                    )],
                    attributor: None,
                },
            ],
        }
    }

    #[test]
    fn boot_and_run_the_probe_program() {
        let p = probe_program();
        let mut machine = Machine::new(&p);
        let booted = machine.boot().unwrap();
        let v = machine.run(booted, &StaticMode::Top, 1000).unwrap();
        assert_eq!(v, Term::ModeV(ModeName::new("high")));
        assert!(machine.steps() > 3);
    }

    #[test]
    fn snapshot_reduces_to_check_then_fresh_object() {
        let p = probe_program();
        let mut machine = Machine::new(&p);
        let obj = machine
            .run(
                new_dynamic(
                    "Probe",
                    vec![
                        modev("low"),
                        mcase(vec![("low", modev("low")), ("high", modev("high"))]),
                    ],
                ),
                &StaticMode::Top,
                100,
            )
            .unwrap();
        let Term::Obj(original) = &obj else { panic!() };
        assert_eq!(original.mode, FMode::Dynamic);

        let snap = snapshot(obj.clone(), StaticMode::Bot, StaticMode::Top);
        // First step produces a check term.
        let step1 = machine.step(snap, &StaticMode::Top).unwrap();
        assert!(matches!(step1, Term::Check { .. }));
        // Running it yields a *fresh* object with a ground mode.
        let v = machine.run(step1, &StaticMode::Top, 100).unwrap();
        let Term::Obj(copy) = &v else { panic!() };
        assert_eq!(copy.mode, FMode::Ground(mc("low")));
        assert_ne!(copy.id, original.id, "the formal rule always copies");
    }

    #[test]
    fn bad_check_is_detected() {
        let p = probe_program();
        let mut machine = Machine::new(&p);
        let obj = machine
            .run(
                new_dynamic(
                    "Probe",
                    vec![
                        modev("high"),
                        mcase(vec![("low", modev("low")), ("high", modev("high"))]),
                    ],
                ),
                &StaticMode::Top,
                100,
            )
            .unwrap();
        // Bound [⊥, low] but the attributor returns high.
        let snap = snapshot(obj, StaticMode::Bot, mc("low"));
        let err = machine.run(snap, &StaticMode::Top, 100).unwrap_err();
        assert!(matches!(err, FormalError::BadCheck(_)));
    }

    #[test]
    fn dfall_blocks_upward_calls() {
        let p = FProgram {
            modes: two_mode_table(),
            classes: vec![FClass {
                name: ClassName::new("W"),
                mode_params: ClassModeParams::with_bounds(vec![ent_modes::Bounded::unconstrained(
                    ModeVar::new("X"),
                )]),
                superclass: ClassName::object(),
                super_args: vec![],
                fields: vec![],
                methods: vec![method("id", &[], this())],
                attributor: None,
            }],
        };
        let mut machine = Machine::new(&p);
        let heavy = machine
            .run(new_static("W", mc("high"), vec![]), &StaticMode::Top, 10)
            .unwrap();
        // Calling a high-mode object from a low-mode context violates dfall.
        let err = machine
            .run(call(heavy.clone(), "id", vec![]), &mc("low"), 10)
            .unwrap_err();
        assert!(matches!(err, FormalError::DfallViolation(_)));
        // From ⊤ it is fine.
        let ok = machine
            .run(call(heavy, "id", vec![]), &StaticMode::Top, 10)
            .unwrap();
        assert!(matches!(ok, Term::Obj(_)));
    }

    #[test]
    fn messaging_a_dynamic_object_is_a_dfall_violation() {
        let p = probe_program();
        let mut machine = Machine::new(&p);
        let obj = machine
            .run(
                new_dynamic(
                    "Probe",
                    vec![
                        modev("low"),
                        mcase(vec![("low", modev("low")), ("high", modev("high"))]),
                    ],
                ),
                &StaticMode::Top,
                100,
            )
            .unwrap();
        let err = machine
            .run(call(obj, "read", vec![]), &StaticMode::Top, 100)
            .unwrap_err();
        assert!(matches!(err, FormalError::DfallViolation(_)));
    }

    #[test]
    fn closure_runs_its_body_under_its_own_mode() {
        // cl(low, o_high.id()) must violate dfall even when the outer mode
        // is ⊤.
        let p = FProgram {
            modes: two_mode_table(),
            classes: vec![FClass {
                name: ClassName::new("W"),
                mode_params: ClassModeParams::with_bounds(vec![ent_modes::Bounded::unconstrained(
                    ModeVar::new("X"),
                )]),
                superclass: ClassName::object(),
                super_args: vec![],
                fields: vec![],
                methods: vec![method("id", &[], this())],
                attributor: None,
            }],
        };
        let mut machine = Machine::new(&p);
        let heavy = machine
            .run(new_static("W", mc("high"), vec![]), &StaticMode::Top, 10)
            .unwrap();
        let cl = Term::Cl(mc("low"), Box::new(call(heavy, "id", vec![])));
        let err = machine.run(cl, &StaticMode::Top, 10).unwrap_err();
        assert!(matches!(err, FormalError::DfallViolation(_)));
    }

    #[test]
    fn cast_rules() {
        let p = FProgram {
            modes: two_mode_table(),
            classes: vec![
                FClass {
                    name: ClassName::new("A"),
                    mode_params: ClassModeParams::neutral(),
                    superclass: ClassName::object(),
                    super_args: vec![],
                    fields: vec![],
                    methods: vec![],
                    attributor: None,
                },
                FClass {
                    name: ClassName::new("B"),
                    mode_params: ClassModeParams::neutral(),
                    superclass: ClassName::new("A"),
                    super_args: vec![],
                    fields: vec![],
                    methods: vec![],
                    attributor: None,
                },
            ],
        };
        let mut machine = Machine::new(&p);
        let b = machine
            .run(
                new_static("B", StaticMode::Bot, vec![]),
                &StaticMode::Top,
                10,
            )
            .unwrap();
        // Upcast succeeds.
        let up = Term::Cast(ClassName::new("A"), Box::new(b.clone()));
        assert!(machine.run(up, &StaticMode::Top, 10).is_ok());
        // Cross-cast fails.
        let a = machine
            .run(
                new_static("A", StaticMode::Bot, vec![]),
                &StaticMode::Top,
                10,
            )
            .unwrap();
        let down = Term::Cast(ClassName::new("B"), Box::new(a));
        assert!(matches!(
            machine.run(down, &StaticMode::Top, 10),
            Err(FormalError::BadCast(_))
        ));
    }

    #[test]
    fn mode_case_elimination_selects_exact_arm() {
        let p = probe_program();
        let mut machine = Machine::new(&p);
        let e = elim(
            mcase(vec![("low", modev("low")), ("high", modev("high"))]),
            mc("high"),
        );
        let v = machine.run(e, &StaticMode::Top, 10).unwrap();
        assert_eq!(v, Term::ModeV(ModeName::new("high")));
    }

    #[test]
    fn canonicalize_erases_identities() {
        let a = Term::Obj(ObjVal {
            id: 3,
            class: ClassName::new("C"),
            mode: FMode::Ground(StaticMode::Top),
            extra: vec![],
            fields: vec![],
        });
        let b = Term::Obj(ObjVal {
            id: 9,
            class: ClassName::new("C"),
            mode: FMode::Ground(StaticMode::Top),
            extra: vec![],
            fields: vec![],
        });
        assert_ne!(a, b);
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn fuel_exhaustion_reports_divergence() {
        let p = FProgram {
            modes: two_mode_table(),
            classes: vec![FClass {
                name: ClassName::new("L"),
                mode_params: ClassModeParams::neutral(),
                superclass: ClassName::object(),
                super_args: vec![],
                fields: vec![],
                methods: vec![method("spin", &[], call(this(), "spin", vec![]))],
                attributor: None,
            }],
        };
        let mut machine = Machine::new(&p);
        let l = machine
            .run(
                new_static("L", StaticMode::Bot, vec![]),
                &StaticMode::Top,
                10,
            )
            .unwrap();
        let err = machine
            .run(call(l, "spin", vec![]), &StaticMode::Top, 200)
            .unwrap_err();
        assert_eq!(err, FormalError::OutOfFuel);
    }
}
