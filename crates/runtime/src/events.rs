//! Structured runtime events: the raw material of the paper's §6.3
//! energy-debugging workflow (which object was assigned which mode, when,
//! and which dynamic checks failed), in a form cheap enough to collect
//! during benchmark runs.
//!
//! An [`EnergyEvent`] is a fixed-size `Copy` record: interned class,
//! method, and mode ids plus the virtual timestamp — no strings, no
//! per-event allocation. Events are recorded into a bounded [`EventRing`]
//! whose storage grows on demand (amortized doubling up to the retention
//! capacity — a run that records two events never pays for sixteen
//! thousand slots), so the hot-path cost of recording is one branch plus
//! a store; rendering the ids back to names is a separate pass
//! ([`render_event`]) that resolves them through the lowered program's
//! interners, losslessly reproducing the human-readable stream.

use ent_energy::SensorKind;

use crate::lower::{GMode, LoweredProgram};

/// A compact structured runtime event, timestamped on the virtual clock.
///
/// Only recorded when [`crate::RuntimeConfig::record_events`] is set.
/// Names are interned: resolve `class`/`method` ids with
/// [`LoweredProgram::class_name`]/[`LoweredProgram::method_name`] and
/// modes with [`LoweredProgram::mode_string`], or render the whole event
/// with [`render_event`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyEvent {
    /// Virtual time in seconds.
    pub at_s: f64,
    /// What happened.
    pub payload: EventPayload,
}

/// The event body: ids only, fixed size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventPayload {
    /// An object of a dynamic class was allocated (untagged).
    DynamicAlloc {
        /// Class id.
        class: u32,
    },
    /// A snapshot assigned a mode.
    Snapshot {
        /// Class id.
        class: u32,
        /// The mode the attributor produced.
        mode: GMode,
        /// The declared lower bound.
        lo: GMode,
        /// The declared upper bound.
        hi: GMode,
        /// Whether a physical copy was made (lazy copying).
        copied: bool,
        /// Whether the check failed (an `EnergyException` was or would
        /// have been raised).
        failed: bool,
    },
    /// A dynamic waterfall check failed at a message send (method-level
    /// attributors; impossible for statically-checked sends).
    DfallFailure {
        /// Receiver class id.
        class: u32,
        /// Method id.
        method: u32,
        /// The receiver-side mode.
        receiver_mode: GMode,
        /// The sender's mode.
        sender_mode: GMode,
    },
    /// A sensor read was faulted (only possible under fault injection) and
    /// the runtime's degradation policy decided what to serve instead.
    SensorFault {
        /// Which sensor the read targeted.
        sensor: SensorKind,
        /// What the degradation policy served for the faulted read.
        served: FaultServe,
    },
}

/// How a faulted sensor read was served (the degradation ladder of the
/// fault model: corrupted values pass through undetected; detectable
/// faults fall back to last-known-good within the staleness bound, then to
/// the conservative sentinel past it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultServe {
    /// A silently corrupted value was returned as-is (undetectable).
    Corrupted,
    /// The last-known-good reading was served (within the staleness bound).
    LastKnownGood,
    /// No usable reading existed: the conservative sentinel was served and
    /// the run was marked degraded.
    Conservative,
}

/// A bounded ring buffer of [`EnergyEvent`]s.
///
/// The retention bound is fixed once (at
/// [`crate::RuntimeConfig::events_capacity`]) but storage grows lazily:
/// the buffer starts empty and doubles as events arrive, capping out at
/// the bound. Sparse runs therefore pay only for the events they record —
/// preallocating the whole window up front measurably perturbed profiled
/// runs (the half-megabyte default allocation churned the allocator
/// against the profiler's call-tree nodes). When the buffer is full the
/// oldest events are overwritten and counted in [`EventRing::dropped`],
/// so a bounded window of the most recent events always survives
/// arbitrarily long runs.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct EventRing {
    buf: Vec<EnergyEvent>,
    /// Logical capacity (`Vec::with_capacity` may over-allocate).
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
}

impl EventRing {
    /// Creates a ring that retains at most `capacity` events. Storage is
    /// allocated on demand by [`EventRing::push`], not here.
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            buf: Vec::new(),
            cap: capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Records one event: a bounds check plus a store (amortized — the
    /// backing storage doubles up to the retention bound as it fills).
    #[inline]
    pub(crate) fn push(&mut self, ev: EnergyEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else if self.cap == 0 {
            self.dropped += 1;
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention capacity the ring was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many events were overwritten after the ring filled (0 means
    /// the stream is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }

    /// Iterates the retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &EnergyEvent> {
        let (older, newer) = (&self.buf[self.head..], &self.buf[..self.head]);
        older.iter().chain(newer.iter())
    }

    /// The retained events oldest-first, as a vector.
    pub fn to_vec(&self) -> Vec<EnergyEvent> {
        self.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a EventRing {
    type Item = &'a EnergyEvent;
    type IntoIter =
        std::iter::Chain<std::slice::Iter<'a, EnergyEvent>, std::slice::Iter<'a, EnergyEvent>>;

    fn into_iter(self) -> Self::IntoIter {
        let (older, newer) = (&self.buf[self.head..], &self.buf[..self.head]);
        older.iter().chain(newer.iter())
    }
}

/// Renders one event as the CLI's human-readable line, resolving every id
/// back through the lowered program's interners. Lossless: every field of
/// the compact record appears in the rendering.
pub fn render_event(prog: &LoweredProgram, ev: &EnergyEvent) -> String {
    let at_s = ev.at_s;
    match ev.payload {
        EventPayload::DynamicAlloc { class } => {
            format!("[{at_s:8.3}s] alloc dynamic {}", prog.class_name(class))
        }
        EventPayload::Snapshot {
            class,
            mode,
            lo,
            hi,
            copied,
            failed,
        } => {
            let status = if failed {
                "FAILED CHECK"
            } else if copied {
                "copied"
            } else {
                "tagged in place"
            };
            format!(
                "[{at_s:8.3}s] snapshot {} -> {} in [{}, {}] ({status})",
                prog.class_name(class),
                prog.mode_string(mode),
                prog.mode_string(lo),
                prog.mode_string(hi),
            )
        }
        EventPayload::DfallFailure {
            class,
            method,
            receiver_mode,
            sender_mode,
        } => format!(
            "[{at_s:8.3}s] waterfall violation at {}.{}: receiver {} > sender {}",
            prog.class_name(class),
            prog.method_name(method),
            prog.mode_string(receiver_mode),
            prog.mode_string(sender_mode),
        ),
        EventPayload::SensorFault { sensor, served } => {
            let sensor = match sensor {
                SensorKind::Battery => "battery",
                SensorKind::Temperature => "temperature",
            };
            let served = match served {
                FaultServe::Corrupted => "corrupted value passed through",
                FaultServe::LastKnownGood => "served last-known-good",
                FaultServe::Conservative => "served conservative sentinel (degraded)",
            };
            format!("[{at_s:8.3}s] sensor fault on {sensor}: {served}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_s: f64) -> EnergyEvent {
        EnergyEvent {
            at_s,
            payload: EventPayload::DynamicAlloc { class: 0 },
        }
    }

    #[test]
    fn ring_keeps_everything_until_full() {
        let mut ring = EventRing::with_capacity(4);
        for i in 0..3 {
            ring.push(ev(i as f64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 0);
        let times: Vec<f64> = ring.iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut ring = EventRing::with_capacity(3);
        for i in 0..5 {
            ring.push(ev(i as f64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.recorded(), 5);
        let times: Vec<f64> = ring.iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn zero_capacity_ring_counts_but_retains_nothing() {
        let mut ring = EventRing::with_capacity(0);
        ring.push(ev(1.0));
        assert!(ring.is_empty());
        assert_eq!(ring.recorded(), 1);
    }
}
