//! Bytecode compilation: flattens lowered [`LExpr`] trees into the flat
//! register-machine code the [`crate::vm`] dispatch loop executes.
//!
//! The tree IR of [`crate::lower`] already resolved every name to a dense
//! index; what remains on the tree-walker's hot path is the *shape* of the
//! tree itself — one recursive `eval` activation, one `Box` dereference and
//! one `Result` unwind per node. This pass linearizes each body once, on
//! first execution, into:
//!
//! * a flat `Vec<Instr>` of fixed-width instructions (a `u8` opcode plus
//!   `u16`/`u32` operand words) addressing a single per-frame register
//!   file: parameter and `let` slots first (the same slot numbers lowering
//!   assigned), scratch registers above them;
//! * a constant pool ([`Code::consts`]) holding literal values;
//! * side tables of per-site metadata (call sites, snapshot bounds, field
//!   ids, builtin descriptors), so the instruction stream itself stays
//!   small and cache-friendly.
//!
//! **Gas exactness.** The tree-walker charges one gas unit at every node
//! *entry*, pre-order, and the step counter is observable (it is part of
//! [`crate::RunStats`], of telemetry, and of the error state when a run
//! dies). The compiler therefore threads a `pending` gas account: entering
//! a node increments it, and the first instruction emitted for that
//! node's subtree carries the accumulated charges in [`Instr::gas`].
//! Because consecutive pending charges correspond to consecutive charges
//! in the tree-walker (nothing observable happens between a parent's
//! entry and its first child's entry), batching them preserves the step
//! counter exactly at every observable point — including the out-of-gas
//! boundary, where [`crate::interp`]'s batched checker clamps to
//! `gas_limit + 1` exactly as the one-at-a-time checker would have
//! reported. Charges that straddle an observable action (an operand read,
//! a force, a side effect) are *never* batched across it: fused
//! superinstructions carry a separate mid-instruction charge
//! ([`FusedBin::rgas`]) applied at the exact tree position.
//!
//! **Superinstructions.** Three fusions cover the measured hot pairs:
//!
//! * [`Op::BinF`] — load-slot/load-const + binop: a binary whose operands
//!   are frame slots or literals executes as one instruction (the operand
//!   descriptors live in a [`FusedBin`] site).
//! * [`Op::JmpBin`] / [`Op::JmpBinF`] — compare + branch: an `if` whose
//!   condition is a comparison branches directly on the comparison result
//!   without materializing the boolean or re-checking its type.
//! * [`Op::FieldThis`] / the `this_recv` call flavor — field-get and send
//!   on `this` skip the receiver register round-trip entirely.
//!
//! Inline-cache site ids are allocated from per-program atomic counters
//! ([`IcCounters`]) so every send / `mcase` / snapshot site owns one slot
//! in the per-run cache vectors (see `crate::vm`); ids only need to be
//! unique, not dense, so racing lazy compilations stay correct.

use std::sync::atomic::{AtomicU32, Ordering};

use ent_modes::ModeName;
use ent_syntax::{BinOp, ClassName, Ident};

use crate::lower::{BOp, CastCheck, LExpr, LMode, LStmt, NewPlan};
use crate::value::Value;

/// Per-program inline-cache site counters; compiled bodies allocate their
/// site ids here so each site indexes a distinct slot of the per-run cache
/// vectors.
#[derive(Debug, Default)]
pub(crate) struct IcCounters {
    pub(crate) send: AtomicU32,
    pub(crate) arm: AtomicU32,
    pub(crate) snap: AtomicU32,
}

/// Opcodes. Operand conventions are given as `a`/`b`/`c` (`u16` words) and
/// `d` (`u32` word) of [`Instr`]; `dst`, `src`, and register operands index
/// the frame's register file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// `dst=a ← consts[d]`.
    Const,
    /// `dst=a ← unit`.
    Unit,
    /// `dst=a ← this`.
    This,
    /// `dst=a ← locals[b]` (unbound-parameter check; name in `names[d]`).
    Local,
    /// Always errors: unbound variable `names[d]`.
    Unbound,
    /// `dst=a ← (regs[b]).field` via `fields[d]`.
    FieldGet,
    /// `dst=a ← this.field` via `fields[d]` (fused this + field-get).
    FieldThis,
    /// `dst=a ← new` with ctor args at `regs[b..]`, site `news[d]`.
    NewObj,
    /// Always errors: unknown class `unknown_classes[d]` (ctor args were
    /// evaluated into scratch first, as the tree-walker does).
    NewUnknown,
    /// `dst=a ← send` with receiver/args at `regs[b..]`, site `calls[d]`.
    CallM,
    /// `dst=a ← builtin` with args at `regs[b..]`, site `builtins[d]`.
    CallB,
    /// `dst=a ← cast(regs[b])` via `casts[d]`.
    CastV,
    /// `dst=a ← snapshot(regs[b])` via `snaps[d]`.
    Snap,
    /// `dst=a ← mcase` of arms at `regs[b..]`, site `mcases[d]`.
    MakeMCase,
    /// `dst=a ← eliminate(regs[b])` via `elims[d]`.
    ElimV,
    /// `dst=a ← regs[b] ⊕ regs[c]` with `⊕ = bins[d]` (rhs forced here;
    /// an explicit [`Op::Force`] precedes the rhs code when the lhs may be
    /// a mode case).
    Bin,
    /// Fused binop: `dst=a`, operands described by `fused[d]`.
    BinF,
    /// Fused compare+branch: `regs[a] ⊕ regs[b]` with `⊕ = bins[c]`;
    /// jump to `d` when false.
    JmpBin,
    /// Fused-operand compare+branch: operands from `fused[a]`; jump to
    /// `d` when false.
    JmpBinF,
    /// `dst=a ← ⊖ regs[b]` with `⊖` = `!` when `c == 0`, unary `-` when
    /// `c == 1`.
    Un,
    /// Unconditional jump to `d`.
    Jmp,
    /// Force `regs[b]`; jump to `d` unless it is `true` (the `if` guard).
    JmpIfFalse,
    /// Short-circuit guard: force `regs[b]` to a bool (op for the error
    /// message in `bins[c]`), store it back, jump to `d` when the op
    /// short-circuits (`&&` on false, `||` on true).
    ScJump,
    /// Force `regs[b]` to a bool (op in `bins[c]`) and store it back (the
    /// non-short-circuit tail of `&&`/`||`).
    ScForce,
    /// Force `regs[b]` in place (auto-eliminate a mode case at the frame
    /// mode).
    Force,
    /// `dst=a ← [regs[b..b+c]]`.
    ArrLit,
    /// `return regs[b]` (unwinds to the method boundary).
    Ret,
    /// End of body: yield `regs[b]` as the body's value.
    Halt,
    /// Push an exception handler at pc `d`.
    TryPush,
    /// Pop the innermost handler (body completed without throwing).
    TryPop,
}

/// One fixed-width instruction. `gas` counts the pre-order node-entry
/// charges this instruction leads with (see the module docs).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Instr {
    pub(crate) op: Op,
    pub(crate) gas: u16,
    pub(crate) a: u16,
    pub(crate) b: u16,
    pub(crate) c: u16,
    pub(crate) d: u32,
}

/// A fused binop operand: an already-materialized register, a frame slot
/// (read + unbound check + force in place), or a pool constant.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Opnd {
    Reg(u16),
    Slot { slot: u16, name: u32 },
    Cst(u16),
}

/// Site data for [`Op::BinF`] / [`Op::JmpBinF`]. `rgas` is the gas charge
/// for a fused rhs operand, applied *after* the lhs force (its exact
/// tree-walker position).
#[derive(Clone, Copy, Debug)]
pub(crate) struct FusedBin {
    pub(crate) op: BinOp,
    pub(crate) lhs: Opnd,
    pub(crate) rhs: Opnd,
    pub(crate) rgas: u16,
}

/// Site data for field reads.
#[derive(Clone, Debug)]
pub(crate) struct FieldSite {
    pub(crate) field: u32,
    pub(crate) name: Ident,
}

/// Site data for `new` expressions.
#[derive(Debug)]
pub(crate) struct NewSite {
    pub(crate) class: u32,
    pub(crate) plan: NewPlan,
    pub(crate) n_args: u16,
}

/// Site data for sends.
#[derive(Debug)]
pub(crate) struct CallSite {
    pub(crate) method: u32,
    pub(crate) n_args: u16,
    /// The receiver is `this` (fused; no receiver register).
    pub(crate) this_recv: bool,
    pub(crate) mode_args: Vec<LMode>,
    /// Send inline-cache slot.
    pub(crate) ic: u32,
}

/// Site data for builtin calls.
#[derive(Clone, Debug)]
pub(crate) struct BuiltinSite {
    pub(crate) op: BOp,
    pub(crate) ns: Ident,
    pub(crate) name: Ident,
    pub(crate) n_args: u16,
    /// Force the last argument at call time (earlier arguments get
    /// explicit [`Op::Force`] instructions at their exact tree position).
    pub(crate) force_last: bool,
}

/// Site data for snapshots.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SnapSite {
    pub(crate) lo: LMode,
    pub(crate) hi: LMode,
    /// Snapshot mode-decision cache slot.
    pub(crate) ic: u32,
}

/// Site data for `<|` eliminations.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ElimSite {
    pub(crate) mode: Option<LMode>,
    /// Arm-selection inline-cache slot.
    pub(crate) ic: u32,
}

/// Site data for mode-case construction.
#[derive(Clone, Debug)]
pub(crate) struct McaseSite {
    pub(crate) modes: Vec<ModeName>,
}

/// A compiled body: the instruction stream plus its side tables. Owned by
/// the lowered unit it was compiled from (shared program-wide through the
/// `OnceLock` cells on [`crate::lower::LMethod`] and friends, so the batch
/// engine's program cache amortizes compilation exactly once).
#[derive(Debug, Default)]
pub(crate) struct Code {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) consts: Vec<Value>,
    /// Names for unbound-variable diagnostics, by `names` index.
    pub(crate) names: Vec<Ident>,
    pub(crate) bins: Vec<BinOp>,
    pub(crate) fused: Vec<FusedBin>,
    pub(crate) fields: Vec<FieldSite>,
    pub(crate) news: Vec<NewSite>,
    pub(crate) calls: Vec<CallSite>,
    pub(crate) builtins: Vec<BuiltinSite>,
    pub(crate) casts: Vec<Option<CastCheck>>,
    pub(crate) snaps: Vec<SnapSite>,
    pub(crate) elims: Vec<ElimSite>,
    pub(crate) mcases: Vec<McaseSite>,
    pub(crate) unknown_classes: Vec<ClassName>,
    /// Registers the frame needs: locals (parameters + deepest `let`
    /// nesting, at the slot numbers lowering assigned) then scratch.
    pub(crate) frame_size: u32,
}

/// Compiles one lowered body (method, attributor, or field initializer)
/// whose frame starts with `n_base` locals (the parameter count; zero for
/// class attributors and initializers).
pub(crate) fn compile_body(body: &LExpr, n_base: u32, ic: &IcCounters) -> Code {
    // Pass 1: the deepest lexical `let` depth, mirroring the slot numbers
    // lowering assigned, fixes where scratch registers start.
    let mut max_locals = n_base;
    max_let_depth(body, n_base, &mut max_locals);
    let mut c = Compiler {
        ic,
        code: Code::default(),
        pending: 0,
        let_depth: n_base,
        scratch: max_locals,
        max_reg: max_locals,
    };
    let dst = c.alloc_scratch();
    c.expr(body, dst);
    c.emit(Op::Halt, 0, dst, 0, 0);
    c.code.frame_size = c.max_reg;
    c.code
}

fn max_let_depth(e: &LExpr, cur: u32, max: &mut u32) {
    let mut walk = |e: &LExpr| max_let_depth(e, cur, max);
    match e {
        LExpr::Lit(_) | LExpr::ModeConst(_) | LExpr::This | LExpr::Var { .. } => {}
        LExpr::UnboundVar(_) => {}
        LExpr::Field { recv, .. } => walk(recv),
        LExpr::New { ctor_args, .. } | LExpr::NewUnknown { ctor_args, .. } => {
            ctor_args.iter().for_each(walk)
        }
        LExpr::Call { recv, args, .. } => {
            walk(recv);
            args.iter().for_each(walk);
        }
        LExpr::Builtin { args, .. } => args.iter().for_each(walk),
        LExpr::Cast { expr, .. }
        | LExpr::Snapshot { expr, .. }
        | LExpr::Elim { expr, .. }
        | LExpr::Unary { expr, .. } => walk(expr),
        LExpr::MCase(arms) => arms.iter().for_each(|(_, a)| walk(a)),
        LExpr::Binary { lhs, rhs, .. } => {
            walk(lhs);
            walk(rhs);
        }
        LExpr::If { cond, then, els } => {
            walk(cond);
            walk(then);
            if let Some(els) = els {
                walk(els);
            }
        }
        LExpr::Try { body, handler } => {
            walk(body);
            walk(handler);
        }
        LExpr::ArrayLit(items) => items.iter().for_each(walk),
        LExpr::Block(stmts) => {
            // Mirrors lowering: each `let` claims the next slot for the
            // rest of the block; sibling blocks reuse the same depths.
            let mut d = cur;
            for stmt in stmts {
                match stmt {
                    LStmt::Let(v) => {
                        max_let_depth(v, d, max);
                        d += 1;
                        *max = (*max).max(d);
                    }
                    LStmt::Expr(e) | LStmt::Return(e) => max_let_depth(e, d, max),
                }
            }
        }
    }
}

struct Compiler<'a> {
    ic: &'a IcCounters,
    code: Code,
    /// Node-entry gas charges accumulated since the last emission; the
    /// next emitted instruction leads with them.
    pending: u16,
    /// Current lexical `let` depth = the slot the next `let` binds.
    let_depth: u32,
    /// Next free scratch register.
    scratch: u32,
    max_reg: u32,
}

/// Comparison operators: safe to fuse into a branch (the result is always
/// a bool, so the `if` guard's bool check cannot fire).
fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
    )
}

/// Whether an expression's value can be a mode case, used to place the
/// implicit-projection forces the tree-walker applies to binop operands
/// and builtin arguments. Conservative: unknown shapes answer `true`.
fn maybe_mcase(e: &LExpr) -> bool {
    match e {
        LExpr::Lit(_)
        | LExpr::ModeConst(_)
        | LExpr::This
        | LExpr::New { .. }
        | LExpr::NewUnknown { .. }
        | LExpr::Snapshot { .. }
        | LExpr::Binary { .. }
        | LExpr::Unary { .. }
        | LExpr::ArrayLit(_)
        | LExpr::UnboundVar(_) => false,
        LExpr::Cast { expr, .. } => maybe_mcase(expr),
        LExpr::If { then, els, .. } => maybe_mcase(then) || els.as_deref().is_some_and(maybe_mcase),
        LExpr::Try { body, handler } => maybe_mcase(body) || maybe_mcase(handler),
        LExpr::Block(stmts) => match stmts.last() {
            Some(LStmt::Expr(e)) => maybe_mcase(e),
            _ => false,
        },
        // Var, Field, Call, Builtin (Arr.get of mode cases), Elim (nested
        // cases), MCase.
        _ => true,
    }
}

/// Whether an expression is a fusable binop operand (a leaf that costs
/// exactly one gas charge and cannot have side effects).
fn fusable(e: &LExpr) -> bool {
    matches!(e, LExpr::Var { .. } | LExpr::Lit(_))
}

impl Compiler<'_> {
    fn reg(&self, r: u32) -> u16 {
        debug_assert!(r <= u16::MAX as u32, "register file exceeds u16 range");
        r as u16
    }

    fn alloc_scratch(&mut self) -> u16 {
        let r = self.scratch;
        self.scratch += 1;
        self.max_reg = self.max_reg.max(self.scratch);
        self.reg(r)
    }

    /// Emits one instruction, draining the pending node-entry gas into it.
    fn emit(&mut self, op: Op, a: u16, b: u16, c: u16, d: u32) -> usize {
        let gas = self.pending;
        self.pending = 0;
        let at = self.code.instrs.len();
        self.code.instrs.push(Instr {
            op,
            gas,
            a,
            b,
            c,
            d,
        });
        at
    }

    fn patch(&mut self, at: usize) {
        self.code.instrs[at].d = self.code.instrs.len() as u32;
    }

    fn const_idx(&mut self, v: Value) -> u16 {
        let i = self.code.consts.len();
        self.code.consts.push(v);
        debug_assert!(i <= u16::MAX as usize);
        i as u16
    }

    fn name_idx(&mut self, n: &Ident) -> u32 {
        let i = self.code.names.len();
        self.code.names.push(n.clone());
        i as u32
    }

    fn bin_idx(&mut self, op: BinOp) -> usize {
        let i = self.code.bins.len();
        self.code.bins.push(op);
        i
    }

    /// Builds the operand descriptor for a fusable leaf, accounting its
    /// one gas charge to the caller's chosen position.
    fn make_opnd(&mut self, e: &LExpr) -> Opnd {
        match e {
            LExpr::Var { slot, name } => Opnd::Slot {
                slot: self.reg(*slot),
                name: self.name_idx(name),
            },
            LExpr::Lit(v) => Opnd::Cst(self.const_idx(v.clone())),
            _ => unreachable!("fusable() guards operand shapes"),
        }
    }

    /// Compiles `e`, leaving its value in register `dst`. `dst` is written
    /// only as the final action on every path, so it may alias a live
    /// `let` slot.
    fn expr(&mut self, e: &LExpr, dst: u16) {
        // The tree-walker charges one gas at every node entry; the first
        // instruction this subtree emits carries it.
        self.pending += 1;
        match e {
            LExpr::Lit(v) => {
                let k = self.const_idx(v.clone());
                self.emit(Op::Const, dst, 0, 0, u32::from(k));
            }
            LExpr::ModeConst(m) => {
                let k = self.const_idx(Value::Mode(m.clone()));
                self.emit(Op::Const, dst, 0, 0, u32::from(k));
            }
            LExpr::This => {
                self.emit(Op::This, dst, 0, 0, 0);
            }
            LExpr::Var { slot, name } => {
                let n = self.name_idx(name);
                let slot = self.reg(*slot);
                self.emit(Op::Local, dst, slot, 0, n);
            }
            LExpr::UnboundVar(name) => {
                let n = self.name_idx(name);
                self.emit(Op::Unbound, 0, 0, 0, n);
            }
            LExpr::Field { recv, field, name } => {
                let site = self.code.fields.len() as u32;
                self.code.fields.push(FieldSite {
                    field: *field,
                    name: name.clone(),
                });
                if matches!(**recv, LExpr::This) {
                    self.pending += 1; // the fused `this` node
                    self.emit(Op::FieldThis, dst, 0, 0, site);
                } else {
                    let mark = self.scratch;
                    let r = self.alloc_scratch();
                    self.expr(recv, r);
                    self.emit(Op::FieldGet, dst, r, 0, site);
                    self.scratch = mark;
                }
            }
            LExpr::New {
                class,
                plan,
                ctor_args,
            } => {
                let mark = self.scratch;
                let base = self.scratch;
                for _ in ctor_args {
                    self.alloc_scratch();
                }
                for (i, a) in ctor_args.iter().enumerate() {
                    self.expr(a, self.reg(base + i as u32));
                }
                let site = self.code.news.len() as u32;
                self.code.news.push(NewSite {
                    class: *class,
                    plan: plan.clone(),
                    n_args: ctor_args.len() as u16,
                });
                let base = self.reg(base);
                self.emit(Op::NewObj, dst, base, 0, site);
                self.scratch = mark;
            }
            LExpr::NewUnknown { class, ctor_args } => {
                let mark = self.scratch;
                for a in ctor_args {
                    let r = self.alloc_scratch();
                    self.expr(a, r);
                }
                let site = self.code.unknown_classes.len() as u32;
                self.code.unknown_classes.push(class.clone());
                self.emit(Op::NewUnknown, 0, 0, 0, site);
                self.scratch = mark;
            }
            LExpr::Call {
                recv,
                method,
                mode_args,
                args,
            } => {
                let mark = self.scratch;
                let this_recv = matches!(**recv, LExpr::This);
                let base = self.scratch;
                let n_regs = args.len() as u32 + u32::from(!this_recv);
                for _ in 0..n_regs {
                    self.alloc_scratch();
                }
                let arg_base = if this_recv {
                    self.pending += 1; // the fused `this` node
                    base
                } else {
                    self.expr(recv, self.reg(base));
                    base + 1
                };
                for (i, a) in args.iter().enumerate() {
                    self.expr(a, self.reg(arg_base + i as u32));
                }
                let site = self.code.calls.len() as u32;
                self.code.calls.push(CallSite {
                    method: *method,
                    n_args: args.len() as u16,
                    this_recv,
                    mode_args: mode_args.clone(),
                    ic: self.ic.send.fetch_add(1, Ordering::Relaxed),
                });
                let base = self.reg(base);
                self.emit(Op::CallM, dst, base, 0, site);
                self.scratch = mark;
            }
            LExpr::Builtin { op, ns, name, args } => {
                let mark = self.scratch;
                let base = self.scratch;
                for _ in args {
                    self.alloc_scratch();
                }
                let n = args.len();
                let mut force_last = false;
                for (i, a) in args.iter().enumerate() {
                    let r = self.reg(base + i as u32);
                    self.expr(a, r);
                    if maybe_mcase(a) {
                        if i + 1 == n {
                            // Nothing observable sits between the last
                            // argument's force and the builtin itself.
                            force_last = true;
                        } else {
                            self.emit(Op::Force, 0, r, 0, 0);
                        }
                    }
                }
                let site = self.code.builtins.len() as u32;
                self.code.builtins.push(BuiltinSite {
                    op: *op,
                    ns: ns.clone(),
                    name: name.clone(),
                    n_args: n as u16,
                    force_last,
                });
                let base = self.reg(base);
                self.emit(Op::CallB, dst, base, 0, site);
                self.scratch = mark;
            }
            LExpr::Cast { check, expr } => {
                self.expr(expr, dst);
                let site = self.code.casts.len() as u32;
                self.code.casts.push(check.clone());
                self.emit(Op::CastV, dst, dst, 0, site);
            }
            LExpr::Snapshot { expr, lo, hi } => {
                self.expr(expr, dst);
                let site = self.code.snaps.len() as u32;
                self.code.snaps.push(SnapSite {
                    lo: *lo,
                    hi: *hi,
                    ic: self.ic.snap.fetch_add(1, Ordering::Relaxed),
                });
                self.emit(Op::Snap, dst, dst, 0, site);
            }
            LExpr::MCase(arms) => {
                let mark = self.scratch;
                let base = self.scratch;
                for _ in arms {
                    self.alloc_scratch();
                }
                for (i, (_, a)) in arms.iter().enumerate() {
                    self.expr(a, self.reg(base + i as u32));
                }
                let site = self.code.mcases.len() as u32;
                self.code.mcases.push(McaseSite {
                    modes: arms.iter().map(|(m, _)| m.clone()).collect(),
                });
                let base = self.reg(base);
                self.emit(Op::MakeMCase, dst, base, 0, site);
                self.scratch = mark;
            }
            LExpr::Elim { expr, mode } => {
                self.expr(expr, dst);
                let site = self.code.elims.len() as u32;
                self.code.elims.push(ElimSite {
                    mode: *mode,
                    ic: self.ic.arm.fetch_add(1, Ordering::Relaxed),
                });
                self.emit(Op::ElimV, dst, dst, 0, site);
            }
            LExpr::Binary { op, lhs, rhs } => {
                self.binary(*op, lhs, rhs, dst, None);
            }
            LExpr::Unary { op, expr } => {
                self.expr(expr, dst);
                let c = match op {
                    ent_syntax::UnOp::Not => 0,
                    ent_syntax::UnOp::Neg => 1,
                };
                self.emit(Op::Un, dst, dst, c, 0);
            }
            LExpr::If { cond, then, els } => {
                let to_else = self.cond_jump(cond);
                self.expr(then, dst);
                let to_end = self.emit(Op::Jmp, 0, 0, 0, 0);
                self.patch(to_else);
                match els {
                    Some(els) => self.expr(els, dst),
                    None => {
                        self.emit(Op::Unit, dst, 0, 0, 0);
                    }
                }
                self.patch(to_end);
            }
            LExpr::Block(stmts) => {
                let depth_mark = self.let_depth;
                let last_is_expr = matches!(stmts.last(), Some(LStmt::Expr(_)));
                let n = stmts.len();
                for (i, stmt) in stmts.iter().enumerate() {
                    match stmt {
                        LStmt::Let(v) => {
                            let slot = self.reg(self.let_depth);
                            self.expr(v, slot);
                            self.let_depth += 1;
                        }
                        LStmt::Expr(e) => {
                            if i + 1 == n {
                                self.expr(e, dst);
                            } else {
                                let mark = self.scratch;
                                let r = self.alloc_scratch();
                                self.expr(e, r);
                                self.scratch = mark;
                            }
                        }
                        LStmt::Return(e) => {
                            let mark = self.scratch;
                            let r = self.alloc_scratch();
                            self.expr(e, r);
                            self.emit(Op::Ret, 0, r, 0, 0);
                            self.scratch = mark;
                        }
                    }
                }
                if !last_is_expr {
                    self.emit(Op::Unit, dst, 0, 0, 0);
                }
                self.let_depth = depth_mark;
            }
            LExpr::Try { body, handler } => {
                let push_at = self.emit(Op::TryPush, 0, 0, 0, 0);
                self.expr(body, dst);
                self.emit(Op::TryPop, 0, 0, 0, 0);
                let to_end = self.emit(Op::Jmp, 0, 0, 0, 0);
                self.patch(push_at); // handler starts here
                self.expr(handler, dst);
                self.patch(to_end);
            }
            LExpr::ArrayLit(items) => {
                let mark = self.scratch;
                let base = self.scratch;
                for _ in items {
                    self.alloc_scratch();
                }
                for (i, item) in items.iter().enumerate() {
                    self.expr(item, self.reg(base + i as u32));
                }
                let base = self.reg(base);
                self.emit(Op::ArrLit, dst, base, items.len() as u16, 0);
                self.scratch = mark;
            }
        }
    }

    /// Compiles a binary operator. With `branch_false: Some(..)` the op is
    /// a comparison compiled as a fused compare+branch; the returned index
    /// is then the branch instruction to patch. The caller has already
    /// accounted the *enclosing* node's gas; this accounts the binop node
    /// and its fused operands.
    fn binary(
        &mut self,
        op: BinOp,
        lhs: &LExpr,
        rhs: &LExpr,
        dst: u16,
        branch_false: Option<()>,
    ) -> usize {
        if matches!(op, BinOp::And | BinOp::Or) {
            debug_assert!(branch_false.is_none());
            self.expr(lhs, dst);
            let site = self.bin_idx(op) as u16;
            let sc = self.emit(Op::ScJump, 0, dst, site, 0);
            self.expr(rhs, dst);
            self.emit(Op::ScForce, 0, dst, site, 0);
            self.patch(sc);
            return sc;
        }

        let lhs_fusable = fusable(lhs);
        let rhs_fusable = fusable(rhs);
        // Fused operands evaluate *inside* the instruction; the lhs must
        // never execute after the rhs, so a fused lhs pairs only with a
        // fused rhs.
        if rhs_fusable && (lhs_fusable || !matches!(lhs, LExpr::Binary { .. })) {
            let (l, rgas) = if lhs_fusable {
                self.pending += 1; // the fused lhs leaf's gas, charged up front
                (self.make_opnd(lhs), 1)
            } else {
                let mark = self.scratch;
                let r = self.alloc_scratch();
                self.expr(lhs, r);
                self.scratch = mark;
                // The lhs force happens inside the fused instruction,
                // before the rhs gas — its exact tree position.
                (Opnd::Reg(r), 1)
            };
            let r = self.make_opnd(rhs);
            let site = self.code.fused.len() as u32;
            self.code.fused.push(FusedBin {
                op,
                lhs: l,
                rhs: r,
                rgas,
            });
            return match branch_false {
                Some(()) => {
                    debug_assert!(site <= u32::from(u16::MAX));
                    self.emit(Op::JmpBinF, site as u16, 0, 0, 0)
                }
                None => self.emit(Op::BinF, dst, 0, 0, site),
            };
        }

        // General form: both operands materialize into registers; the lhs
        // force precedes the rhs code when the lhs may be a mode case.
        let mark = self.scratch;
        let rl = self.alloc_scratch();
        let rr = self.alloc_scratch();
        self.expr(lhs, rl);
        if maybe_mcase(lhs) {
            self.emit(Op::Force, 0, rl, 0, 0);
        }
        self.expr(rhs, rr);
        let site = self.bin_idx(op);
        self.scratch = mark;
        match branch_false {
            Some(()) => {
                debug_assert!(site <= u16::MAX as usize);
                self.emit(Op::JmpBin, rl, rr, site as u16, 0)
            }
            None => self.emit(Op::Bin, dst, rl, rr, site as u32),
        }
    }

    /// Compiles an `if` condition, returning the branch instruction to
    /// patch to the else target. Comparisons fuse into the branch; other
    /// shapes materialize and test.
    fn cond_jump(&mut self, cond: &LExpr) -> usize {
        if let LExpr::Binary { op, lhs, rhs } = cond {
            if is_cmp(*op) {
                self.pending += 1; // the condition binop's node gas
                return self.binary(*op, lhs, rhs, 0, Some(()));
            }
        }
        let mark = self.scratch;
        let r = self.alloc_scratch();
        self.expr(cond, r);
        self.scratch = mark;
        self.emit(Op::JmpIfFalse, 0, r, 0, 0)
    }
}
