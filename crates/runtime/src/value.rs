//! Runtime values.

use std::fmt;
use std::sync::Arc;

use ent_modes::{ModeName, StaticMode};

/// A reference into the interpreter heap.
pub type ObjRef = usize;

/// A runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Immutable string.
    Str(Arc<str>),
    /// The unit value.
    Unit,
    /// A mode value (the result of an attributor).
    Mode(ModeName),
    /// An immutable array.
    Array(Arc<Vec<Value>>),
    /// A heap object.
    Obj(ObjRef),
    /// A mode case value `mcase{m: v; ...}` with eagerly evaluated arms.
    MCase(Arc<Vec<(ModeName, Value)>>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// A short name for the value's runtime type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Unit => "unit",
            Value::Mode(_) => "mode",
            Value::Array(_) => "array",
            Value::Obj(_) => "object",
            Value::MCase(_) => "mcase",
        }
    }

    /// Renders the value for `IO.print`-style output.
    pub fn display_string(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            other => other.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Double(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Unit => f.write_str("unit"),
            Value::Mode(m) => write!(f, "{m}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(r) => write!(f, "<object #{r}>"),
            Value::MCase(arms) => {
                write!(f, "mcase{{")?;
                for (i, (m, v)) in arms.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{m}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// The runtime mode tag of an object: dynamic objects are untagged until
/// their first snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum RtMode {
    /// Dynamic, not yet snapshotted.
    Dynamic,
    /// A ground static mode: `⊥`, `⊤`, or a declared constant.
    Ground(StaticMode),
}

impl RtMode {
    /// The ground mode, if tagged.
    pub fn ground(&self) -> Option<&StaticMode> {
        match self {
            RtMode::Dynamic => None,
            RtMode::Ground(m) => Some(m),
        }
    }
}

impl fmt::Display for RtMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtMode::Dynamic => f.write_str("?"),
            RtMode::Ground(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(
            Value::Array(Arc::new(vec![Value::Int(1), Value::Int(2)])).to_string(),
            "[1, 2]"
        );
        assert_eq!(Value::Unit.to_string(), "unit");
        assert_eq!(RtMode::Dynamic.to_string(), "?");
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Bool(true).kind(), "bool");
        assert_eq!(Value::Obj(0).kind(), "object");
        assert_eq!(Value::MCase(Arc::new(vec![])).kind(), "mcase");
    }

    #[test]
    fn rt_mode_ground_accessor() {
        assert!(RtMode::Dynamic.ground().is_none());
        let g = RtMode::Ground(StaticMode::Top);
        assert_eq!(g.ground(), Some(&StaticMode::Top));
    }
}
