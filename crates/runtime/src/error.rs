//! Runtime errors and control flow.

use std::error::Error;
use std::fmt;

/// A runtime error.
///
/// `EnergyException` is the paper's catchable error: a failed snapshot
/// bound check (`bad check`) or a dynamic waterfall violation from a
/// method-level attributor. The rest terminate the program.
#[derive(Clone, Debug, PartialEq)]
pub enum RtError {
    /// A `bad check`: a snapshot's attributor produced a mode outside the
    /// declared `[lo, hi]` bounds, or a method attributor produced a mode
    /// above the caller's. Catchable with `try { } catch { }`.
    EnergyException(String),
    /// A `bad cast`: a `(T)e` cast failed at run time.
    BadCast(String),
    /// A mode case had no arm at or below the eliminating mode.
    NoSuchArm(String),
    /// The dynamic waterfall invariant was violated at a message send.
    /// Corollary 1 guarantees this never fires for well-typed programs; it
    /// exists for programs run through `compile_unchecked`.
    DfallViolation(String),
    /// The interpreter's gas limit was exhausted (the reproduction's stand
    /// in for divergence).
    OutOfGas,
    /// The ENT call stack exceeded the interpreter's depth limit.
    StackOverflow,
    /// A builtin failed (index out of bounds, division by zero, …).
    Native(String),
    /// The program has no `Main` class with a zero-argument `main` method.
    NoMain,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::EnergyException(s) => write!(f, "EnergyException: {s}"),
            RtError::BadCast(s) => write!(f, "bad cast: {s}"),
            RtError::NoSuchArm(s) => write!(f, "mode case elimination failed: {s}"),
            RtError::DfallViolation(s) => write!(f, "dynamic waterfall violation: {s}"),
            RtError::OutOfGas => f.write_str("execution exceeded the gas limit"),
            RtError::StackOverflow => f.write_str("call depth exceeded the interpreter limit"),
            RtError::Native(s) => write!(f, "runtime error: {s}"),
            RtError::NoMain => f.write_str("program has no Main.main() entry point"),
        }
    }
}

impl Error for RtError {}

/// Non-local control flow inside the evaluator: early `return` or an error.
#[derive(Clone, Debug, PartialEq)]
pub enum Flow {
    /// `return e` unwinding to the enclosing method or attributor.
    Return(crate::Value),
    /// A runtime error propagating outward.
    Error(RtError),
}

impl From<RtError> for Flow {
    fn from(e: RtError) -> Self {
        Flow::Error(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RtError::EnergyException("mode full_throttle above bound managed".into());
        assert!(e.to_string().starts_with("EnergyException"));
        assert!(RtError::OutOfGas.to_string().contains("gas"));
        assert!(RtError::NoMain.to_string().contains("Main"));
    }

    #[test]
    fn flow_from_error() {
        let f: Flow = RtError::OutOfGas.into();
        assert_eq!(f, Flow::Error(RtError::OutOfGas));
    }
}
