//! Deterministic fault injection for the simulated sensors.
//!
//! Real energy-aware runtimes see sensors that drop out, return stale or
//! noisy readings, batteries that brown out in steps, thermal sensors that
//! run away, and samplers that stall. A [`FaultPlan`] describes such a
//! fault regime; a [`FaultInjector`] realizes it *deterministically*: every
//! fault decision is a pure function of the fault seed, the fault kind, and
//! the virtual-time window it lands in — never of read order, wall-clock
//! time, or thread scheduling. Two runs with the same plan, seed, and
//! program are therefore bit-identical, which is what makes chaos runs
//! diffable and regressions bisectable.
//!
//! The injector perturbs *observations* (what `Ext.battery()` /
//! `Ext.temperature()` and the sampler see) plus the battery *state*
//! (brownouts are genuine charge drops). The underlying energy/time
//! integration is never touched, so a faulted run still measures the work
//! the program actually did. With no injector installed the simulator
//! executes exactly the code it always has — the zero-overhead-when-off
//! discipline of the observability layer, applied to faults.

/// Which simulated sensor a read targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SensorKind {
    /// The battery level fraction (`Ext.battery()`).
    Battery,
    /// The CPU temperature in °C (`Ext.temperature()`).
    Temperature,
}

impl SensorKind {
    /// Dense index (0 = battery, 1 = temperature), for per-sensor tables.
    pub fn index(self) -> usize {
        match self {
            SensorKind::Battery => 0,
            SensorKind::Temperature => 1,
        }
    }
}

/// The outcome of one sensor read under fault injection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SensorRead {
    /// The sensor answered with the true value.
    Clean(f64),
    /// The sensor answered, but the value is silently corrupted (a noise
    /// spike or a thermal-runaway excursion). The reading looks plausible;
    /// the runtime cannot distinguish it from a clean one.
    Corrupted(f64),
    /// The sensor returned its previous value: the reading is frozen for
    /// the rest of this fault window. The caller should serve its
    /// last-known-good reading.
    Stale,
    /// The sensor did not answer at all.
    Dropped,
}

/// A declarative fault regime: per-kind rates, magnitudes, and event
/// counts. All rates are per fault *window* (a `window_s`-second bucket of
/// virtual time); discrete events (brownouts, bursts) are scheduled over
/// `[0, horizon_s)`. The default plan is a no-op.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that a sensor-read window is dropped entirely.
    pub dropout_rate: f64,
    /// Probability that a window serves stale (frozen) readings.
    pub stale_rate: f64,
    /// Probability that a window corrupts readings with a noise spike.
    pub spike_rate: f64,
    /// Relative spike magnitude: a spiked reading is scaled by a factor in
    /// `[1 - spike_mag, 1 + spike_mag]`.
    pub spike_mag: f64,
    /// Number of battery brownout steps scheduled over the horizon.
    pub brownouts: u32,
    /// Battery fraction lost per brownout step.
    pub brownout_drop: f64,
    /// Number of thermal-runaway bursts scheduled over the horizon.
    pub bursts: u32,
    /// Peak temperature excursion of a burst, in °C (observed, not real:
    /// the sensor runs away, the die does not).
    pub burst_temp_c: f64,
    /// Full width of a burst's triangular excursion, in seconds.
    pub burst_width_s: f64,
    /// Probability that a sampler tick stalls (the periodic sample for
    /// that tick is lost).
    pub stall_rate: f64,
    /// Fault-window granularity, in seconds.
    pub window_s: f64,
    /// Horizon over which brownouts and bursts are scheduled, in seconds.
    pub horizon_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            dropout_rate: 0.0,
            stale_rate: 0.0,
            spike_rate: 0.0,
            spike_mag: 0.5,
            brownouts: 0,
            brownout_drop: 0.05,
            bursts: 0,
            burst_temp_c: 25.0,
            burst_width_s: 5.0,
            stall_rate: 0.0,
            window_s: 1.0,
            horizon_s: 60.0,
        }
    }
}

impl FaultPlan {
    /// Whether this plan injects nothing: a no-op plan installed in the
    /// simulator must observe exactly what no plan observes.
    pub fn is_noop(&self) -> bool {
        self.dropout_rate <= 0.0
            && self.stale_rate <= 0.0
            && self.spike_rate <= 0.0
            && self.brownouts == 0
            && self.bursts == 0
            && self.stall_rate <= 0.0
    }

    /// The standard chaos mix used by `--faults chaos` and the
    /// `chaos_resilience` bench: every fault kind active at a rate that
    /// stresses the degradation path without making every run fail.
    pub fn chaos() -> Self {
        FaultPlan {
            dropout_rate: 0.2,
            stale_rate: 0.2,
            spike_rate: 0.15,
            spike_mag: 0.6,
            brownouts: 3,
            brownout_drop: 0.04,
            bursts: 2,
            burst_temp_c: 30.0,
            burst_width_s: 5.0,
            stall_rate: 0.25,
            window_s: 0.5,
            horizon_s: 60.0,
        }
    }

    /// Parses a fault spec string: `off`, `chaos`, or a comma-separated
    /// `key=value` list over the plan's fields (`dropout`, `stale`,
    /// `spike`, `spike_mag`, `brownouts`, `brownout_drop`, `bursts`,
    /// `burst_c`, `burst_width`, `stall`, `window`, `horizon`). A list may
    /// start from the chaos preset by leading with `chaos`, e.g.
    /// `chaos,dropout=0.5`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed key or value.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (i, part) in spec.split(',').map(str::trim).enumerate() {
            match part {
                "" => continue,
                "off" => plan = FaultPlan::default(),
                "chaos" => {
                    if i != 0 {
                        return Err("`chaos` must come first in a fault spec".to_string());
                    }
                    plan = FaultPlan::chaos();
                }
                kv => {
                    let (key, value) = kv.split_once('=').ok_or_else(|| {
                        format!("malformed fault spec entry `{kv}` (want key=value)")
                    })?;
                    let fval = || -> Result<f64, String> {
                        value
                            .parse::<f64>()
                            .ok()
                            .filter(|v| v.is_finite() && *v >= 0.0)
                            .ok_or_else(|| format!("malformed fault value `{value}` for `{key}`"))
                    };
                    let uval = || -> Result<u32, String> {
                        value
                            .parse::<u32>()
                            .map_err(|_| format!("malformed fault count `{value}` for `{key}`"))
                    };
                    match key {
                        "dropout" => plan.dropout_rate = fval()?.min(1.0),
                        "stale" => plan.stale_rate = fval()?.min(1.0),
                        "spike" => plan.spike_rate = fval()?.min(1.0),
                        "spike_mag" => plan.spike_mag = fval()?,
                        "brownouts" => plan.brownouts = uval()?,
                        "brownout_drop" => plan.brownout_drop = fval()?.min(1.0),
                        "bursts" => plan.bursts = uval()?,
                        "burst_c" => plan.burst_temp_c = fval()?,
                        "burst_width" => plan.burst_width_s = fval()?.max(1e-3),
                        "stall" => plan.stall_rate = fval()?.min(1.0),
                        "window" => plan.window_s = fval()?.max(1e-3),
                        "horizon" => plan.horizon_s = fval()?.max(1e-3),
                        other => return Err(format!("unknown fault spec key `{other}`")),
                    }
                }
            }
        }
        Ok(plan)
    }
}

/// Per-fault-kind salts mixed into the window hash, so each fault stream
/// draws independent decisions from the one seed.
mod salt {
    pub const DROPOUT: u64 = 0x01;
    pub const STALE: u64 = 0x02;
    pub const SPIKE: u64 = 0x03;
    pub const SPIKE_MAG: u64 = 0x04;
    pub const STALL: u64 = 0x05;
    pub const BROWNOUT: u64 = 0x06;
    pub const BURST: u64 = 0x07;
    /// Sensor-kind stride: battery and temperature streams are disjoint.
    pub const SENSOR_STRIDE: u64 = 0x100;
}

/// splitmix64: a strong, cheap stateless mixer — the standard choice for
/// hash-derived per-cell randomness.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A realized fault regime: pure, deterministic queries keyed on virtual
/// time. Cloneable and `Send + Sync`; all state is immutable after
/// construction.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    /// Scheduled brownout times over the horizon, sorted ascending.
    brownout_times: Vec<f64>,
    /// Scheduled burst-peak times over the horizon, sorted ascending.
    burst_times: Vec<f64>,
}

impl FaultInjector {
    /// Realizes a plan at a fault seed, scheduling the discrete events.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let schedule = |count: u32, salt: u64| -> Vec<f64> {
            let mut times: Vec<f64> = (0..count)
                .map(|k| {
                    let u = Self::unit_from(seed, salt, k as u64);
                    u * plan.horizon_s
                })
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("event times are finite"));
            times
        };
        let brownout_times = schedule(plan.brownouts, salt::BROWNOUT);
        let burst_times = schedule(plan.bursts, salt::BURST);
        FaultInjector {
            plan,
            seed,
            brownout_times,
            burst_times,
        }
    }

    /// The plan this injector realizes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault seed this injector was realized at.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn unit_from(seed: u64, salt: u64, cell: u64) -> f64 {
        let h = splitmix64(seed ^ splitmix64(salt) ^ splitmix64(cell));
        // 53 high bits → uniform in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A deterministic uniform draw in `[0, 1)` for `(salt, cell)`.
    fn unit(&self, salt: u64, cell: u64) -> f64 {
        Self::unit_from(self.seed, salt, cell)
    }

    /// The fault window a virtual time lands in.
    fn window(&self, t_s: f64) -> u64 {
        (t_s.max(0.0) / self.plan.window_s) as u64
    }

    /// Classifies one sensor read at virtual time `t_s`. `true_value` is
    /// the simulator's actual state; the result says what the sensor
    /// reports. Deterministic in `(seed, kind, window(t_s))` — rereading
    /// within one window gives the same classification.
    ///
    /// Fault priority within a window: dropout > stale > spike. A thermal
    /// burst overlapping `t_s` corrupts temperature reads that would
    /// otherwise be clean.
    pub fn observe(&self, kind: SensorKind, t_s: f64, true_value: f64) -> SensorRead {
        let w = self.window(t_s);
        let stride = salt::SENSOR_STRIDE * (kind.index() as u64 + 1);
        if self.plan.dropout_rate > 0.0
            && self.unit(stride | salt::DROPOUT, w) < self.plan.dropout_rate
        {
            return SensorRead::Dropped;
        }
        if self.plan.stale_rate > 0.0 && self.unit(stride | salt::STALE, w) < self.plan.stale_rate {
            return SensorRead::Stale;
        }
        if self.plan.spike_rate > 0.0 && self.unit(stride | salt::SPIKE, w) < self.plan.spike_rate {
            let u = self.unit(stride | salt::SPIKE_MAG, w);
            let factor = 1.0 + self.plan.spike_mag * (2.0 * u - 1.0);
            return SensorRead::Corrupted(true_value * factor);
        }
        if kind == SensorKind::Temperature {
            let boost = self.thermal_boost(t_s);
            if boost > 0.0 {
                return SensorRead::Corrupted(true_value + boost);
            }
        }
        SensorRead::Clean(true_value)
    }

    /// The observed thermal-runaway excursion at `t_s`, in °C: the sum of
    /// triangular pulses (peak `burst_temp_c`, full width `burst_width_s`)
    /// centered on the scheduled burst times.
    pub fn thermal_boost(&self, t_s: f64) -> f64 {
        let half = self.plan.burst_width_s / 2.0;
        self.burst_times
            .iter()
            .map(|&tb| {
                let d = (t_s - tb).abs();
                if d < half {
                    self.plan.burst_temp_c * (1.0 - d / half)
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Total battery fraction lost to brownout steps scheduled in the
    /// half-open virtual-time interval `(t0, t1]`.
    pub fn brownout_drop(&self, t0: f64, t1: f64) -> f64 {
        let n = self
            .brownout_times
            .iter()
            .filter(|&&t| t > t0 && t <= t1)
            .count();
        n as f64 * self.plan.brownout_drop
    }

    /// The scheduled brownout times (for reports and tests).
    pub fn brownout_times(&self) -> &[f64] {
        &self.brownout_times
    }

    /// Whether the periodic sampler tick at `t_s` stalls (that sample is
    /// lost). Deterministic in `(seed, window(t_s))`.
    pub fn sampler_stalled(&self, t_s: f64) -> bool {
        self.plan.stall_rate > 0.0
            && self.unit(salt::STALL, self.window(t_s)) < self.plan.stall_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_chaos_is_not() {
        assert!(FaultPlan::default().is_noop());
        assert!(!FaultPlan::chaos().is_noop());
    }

    #[test]
    fn noop_injector_observes_cleanly() {
        let inj = FaultInjector::new(FaultPlan::default(), 7);
        for t in 0..200 {
            let t_s = t as f64 * 0.37;
            assert_eq!(
                inj.observe(SensorKind::Battery, t_s, 0.5),
                SensorRead::Clean(0.5)
            );
            assert_eq!(
                inj.observe(SensorKind::Temperature, t_s, 40.0),
                SensorRead::Clean(40.0)
            );
            assert!(!inj.sampler_stalled(t_s));
        }
        assert_eq!(inj.brownout_drop(0.0, 1e6), 0.0);
        assert_eq!(inj.thermal_boost(30.0), 0.0);
    }

    #[test]
    fn same_seed_same_schedule_same_decisions() {
        let a = FaultInjector::new(FaultPlan::chaos(), 42);
        let b = FaultInjector::new(FaultPlan::chaos(), 42);
        assert_eq!(a, b);
        for t in 0..500 {
            let t_s = t as f64 * 0.13;
            assert_eq!(
                a.observe(SensorKind::Battery, t_s, 0.6),
                b.observe(SensorKind::Battery, t_s, 0.6)
            );
            assert_eq!(a.sampler_stalled(t_s), b.sampler_stalled(t_s));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = FaultInjector::new(FaultPlan::chaos(), 1);
        let b = FaultInjector::new(FaultPlan::chaos(), 2);
        let differs = (0..500).any(|t| {
            let t_s = t as f64 * 0.13;
            a.observe(SensorKind::Battery, t_s, 0.6) != b.observe(SensorKind::Battery, t_s, 0.6)
        });
        assert!(differs, "seeds 1 and 2 produced identical fault streams");
    }

    #[test]
    fn decisions_are_stable_within_a_window_and_read_order_free() {
        let inj = FaultInjector::new(FaultPlan::chaos(), 9);
        // Two reads in the same window classify identically, regardless of
        // how many reads happened before them.
        let w = inj.plan().window_s;
        for k in 0..50u64 {
            let base = k as f64 * w;
            let first = inj.observe(SensorKind::Battery, base + 0.1 * w, 0.5);
            let second = inj.observe(SensorKind::Battery, base + 0.9 * w, 0.5);
            assert_eq!(first, second, "window {k}");
        }
    }

    #[test]
    fn fault_rates_are_roughly_honored() {
        let plan = FaultPlan {
            dropout_rate: 0.3,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 5);
        let dropped = (0..1000)
            .filter(|&k| {
                matches!(
                    inj.observe(SensorKind::Battery, k as f64, 0.5),
                    SensorRead::Dropped
                )
            })
            .count();
        assert!((200..400).contains(&dropped), "dropped {dropped}/1000");
    }

    #[test]
    fn brownouts_schedule_within_horizon_and_drop_counts() {
        let plan = FaultPlan {
            brownouts: 4,
            brownout_drop: 0.1,
            horizon_s: 50.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 11);
        assert_eq!(inj.brownout_times().len(), 4);
        for &t in inj.brownout_times() {
            assert!((0.0..50.0).contains(&t));
        }
        let total = inj.brownout_drop(0.0, 50.0);
        assert!((total - 0.4).abs() < 1e-12, "total drop {total}");
        // Disjoint intervals partition the drops.
        let split = inj.brownout_drop(0.0, 25.0) + inj.brownout_drop(25.0, 50.0);
        assert!((split - total).abs() < 1e-12);
    }

    #[test]
    fn thermal_bursts_peak_at_their_centers() {
        let plan = FaultPlan {
            bursts: 1,
            burst_temp_c: 20.0,
            burst_width_s: 4.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan.clone(), 3);
        let center = {
            // Find the peak by scanning.
            let mut best = (0.0, 0.0);
            for k in 0..6000 {
                let t = k as f64 * 0.01;
                let b = inj.thermal_boost(t);
                if b > best.1 {
                    best = (t, b);
                }
            }
            assert!(best.1 > 19.5, "peak boost {}", best.1);
            best.0
        };
        assert_eq!(inj.thermal_boost(center + 3.0), 0.0);
        // A burst-overlapping temperature read is corrupted upward.
        match inj.observe(SensorKind::Temperature, center, 40.0) {
            SensorRead::Corrupted(v) => assert!(v > 55.0, "{v}"),
            other => panic!("expected corrupted read, got {other:?}"),
        }
    }

    #[test]
    fn spikes_scale_within_the_declared_magnitude() {
        let plan = FaultPlan {
            spike_rate: 1.0,
            spike_mag: 0.5,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 13);
        for k in 0..200 {
            match inj.observe(SensorKind::Battery, k as f64, 0.8) {
                SensorRead::Corrupted(v) => {
                    assert!((0.4..=1.2).contains(&v), "spiked value {v}")
                }
                other => panic!("spike_rate 1.0 should always spike, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_round_trips_presets_and_overrides() {
        assert_eq!(FaultPlan::parse("off").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse("chaos").unwrap(), FaultPlan::chaos());
        let p = FaultPlan::parse("chaos,dropout=0.5,brownouts=7").unwrap();
        assert_eq!(p.dropout_rate, 0.5);
        assert_eq!(p.brownouts, 7);
        assert_eq!(p.stale_rate, FaultPlan::chaos().stale_rate);
        let q = FaultPlan::parse("dropout=0.1,stall=0.2,window=2.0").unwrap();
        assert_eq!(q.dropout_rate, 0.1);
        assert_eq!(q.stall_rate, 0.2);
        assert_eq!(q.window_s, 2.0);
        assert!(FaultPlan::parse("dropout").is_err());
        assert!(FaultPlan::parse("dropout=lots").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("dropout=0.1,chaos").is_err());
        assert!(FaultPlan::parse("dropout=-1").is_err());
        assert!(FaultPlan::parse("dropout=nan").is_err());
    }

    #[test]
    fn battery_and_temperature_streams_are_independent() {
        let inj = FaultInjector::new(FaultPlan::chaos(), 21);
        let differs = (0..500).any(|k| {
            let t = k as f64 * 0.25;
            let b = matches!(
                inj.observe(SensorKind::Battery, t, 0.5),
                SensorRead::Dropped
            );
            let c = matches!(
                inj.observe(SensorKind::Temperature, t, 40.0),
                SensorRead::Dropped
            );
            b != c
        });
        assert!(differs, "sensor fault streams should not be correlated");
    }
}
