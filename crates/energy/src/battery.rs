//! A simple battery model: finite capacity in joules, drained by consumed
//! energy, queried by ENT attributors through `Ext.battery()`.
//!
//! The paper's System B (Raspberry Pi) has no battery interface at all, so
//! its battery level was *simulated* in the original evaluation too — this
//! model is the faithful substitute on every platform.

/// A battery with a capacity in joules and a current charge.
///
/// # Example
///
/// ```
/// use ent_energy::BatteryModel;
///
/// let mut b = BatteryModel::new(1000.0);
/// assert_eq!(b.level(), 1.0);
/// b.drain(250.0);
/// assert!((b.level() - 0.75).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BatteryModel {
    capacity_j: f64,
    charge_j: f64,
}

impl BatteryModel {
    /// Creates a fully charged battery.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` is not positive.
    pub fn new(capacity_j: f64) -> Self {
        assert!(capacity_j > 0.0, "battery capacity must be positive");
        BatteryModel {
            capacity_j,
            charge_j: capacity_j,
        }
    }

    /// The state of charge as a fraction in `[0, 1]`.
    pub fn level(&self) -> f64 {
        (self.charge_j / self.capacity_j).clamp(0.0, 1.0)
    }

    /// Sets the state of charge (fraction in `[0, 1]`), as the experiment
    /// harness does to pin the boot mode.
    pub fn set_level(&mut self, fraction: f64) {
        self.charge_j = self.capacity_j * fraction.clamp(0.0, 1.0);
    }

    /// Removes `joules` of charge (floored at empty).
    pub fn drain(&mut self, joules: f64) {
        self.charge_j = (self.charge_j - joules.max(0.0)).max(0.0);
    }

    /// Remaining charge in joules.
    pub fn charge_joules(&self) -> f64 {
        self.charge_j
    }

    /// Total capacity in joules.
    pub fn capacity_joules(&self) -> f64 {
        self.capacity_j
    }

    /// Whether the battery is empty.
    pub fn is_empty(&self) -> bool {
        self.charge_j <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut b = BatteryModel::new(100.0);
        assert_eq!(b.level(), 1.0);
        b.drain(30.0);
        assert!((b.level() - 0.7).abs() < 1e-12);
        assert!(!b.is_empty());
    }

    #[test]
    fn drain_floors_at_zero() {
        let mut b = BatteryModel::new(10.0);
        b.drain(100.0);
        assert_eq!(b.level(), 0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn negative_drain_is_ignored() {
        let mut b = BatteryModel::new(10.0);
        b.drain(-5.0);
        assert_eq!(b.level(), 1.0);
    }

    #[test]
    fn set_level_clamps() {
        let mut b = BatteryModel::new(100.0);
        b.set_level(0.4);
        assert!((b.level() - 0.4).abs() < 1e-12);
        b.set_level(1.5);
        assert_eq!(b.level(), 1.0);
        b.set_level(-0.1);
        assert_eq!(b.level(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        BatteryModel::new(0.0);
    }
}
