//! Newton's-law CPU thermal model, driving the paper's temperature-aware
//! (E3) experiments.

use crate::platform::ThermalParams;

/// CPU temperature that heats with dissipated power and cools toward
/// ambient: `dT/dt = heat · P − cool · (T − ambient)`.
///
/// The steady-state temperature at constant power `P` is
/// `ambient + heat·P/cool`, which is how the platform presets are
/// calibrated (System A saturates near 80 °C under full load, far above the
/// paper's 65 °C `overheating` threshold).
///
/// # Example
///
/// ```
/// use ent_energy::{Platform, ThermalModel};
///
/// let p = Platform::system_a();
/// let mut t = ThermalModel::new(p.thermal);
/// let start = t.temperature_c();
/// t.step(p.active_watts, 10.0); // 10 s of full power
/// assert!(t.temperature_c() > start);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ThermalModel {
    params: ThermalParams,
    temp_c: f64,
}

impl ThermalModel {
    /// Creates a thermal model at ambient temperature.
    pub fn new(params: ThermalParams) -> Self {
        ThermalModel {
            temp_c: params.ambient_c,
            params,
        }
    }

    /// The current CPU temperature in °C.
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Resets to ambient.
    pub fn reset(&mut self) {
        self.temp_c = self.params.ambient_c;
    }

    /// Advances the model by `dt` seconds at dissipated power `watts`,
    /// integrating in sub-steps for stability on long intervals.
    pub fn step(&mut self, watts: f64, dt: f64) {
        let mut remaining = dt.max(0.0);
        // Sub-step at most 0.5 s to keep the explicit Euler update stable.
        while remaining > 0.0 {
            let h = remaining.min(0.5);
            let d =
                self.params.heat * watts - self.params.cool * (self.temp_c - self.params.ambient_c);
            self.temp_c += d * h;
            remaining -= h;
        }
    }

    /// The temperature the model converges to at constant power.
    pub fn steady_state_c(&self, watts: f64) -> f64 {
        self.params.ambient_c + self.params.heat * watts / self.params.cool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn heats_under_load_and_cools_when_idle() {
        let p = Platform::system_a();
        let mut t = ThermalModel::new(p.thermal);
        let ambient = t.temperature_c();
        t.step(p.active_watts, 30.0);
        let hot = t.temperature_c();
        assert!(hot > ambient + 5.0, "should heat noticeably: {hot}");
        t.step(0.0, 120.0);
        assert!(t.temperature_c() < hot, "should cool toward ambient");
    }

    #[test]
    fn converges_to_steady_state() {
        let p = Platform::system_a();
        let mut t = ThermalModel::new(p.thermal);
        let target = t.steady_state_c(p.active_watts);
        for _ in 0..2000 {
            t.step(p.active_watts, 1.0);
        }
        assert!(
            (t.temperature_c() - target).abs() < 0.5,
            "converged to {} vs steady {}",
            t.temperature_c(),
            target
        );
    }

    #[test]
    fn system_a_saturates_above_overheating_threshold() {
        // The E3 experiment needs full-load System A to exceed 65 °C.
        let p = Platform::system_a();
        let t = ThermalModel::new(p.thermal);
        assert!(t.steady_state_c(p.active_watts) > 65.0);
        // …and idle to sit below the 60 °C `hot` threshold.
        assert!(t.steady_state_c(p.idle_watts) < 60.0);
    }

    #[test]
    fn reset_returns_to_ambient() {
        let p = Platform::system_b();
        let mut t = ThermalModel::new(p.thermal);
        t.step(p.active_watts, 60.0);
        t.reset();
        assert_eq!(t.temperature_c(), p.thermal.ambient_c);
    }

    #[test]
    fn long_steps_are_stable() {
        let p = Platform::system_a();
        let mut t = ThermalModel::new(p.thermal);
        t.step(p.active_watts, 10_000.0);
        let temp = t.temperature_c();
        assert!(temp.is_finite());
        assert!(temp < 120.0, "no numeric blowup: {temp}");
    }
}
