//! The energy simulator: a virtual clock plus power, battery, and thermal
//! integration. This is the substitute for the paper's physical testbeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::battery::BatteryModel;
use crate::fault::{FaultInjector, SensorKind, SensorRead};
use crate::platform::{Platform, WorkKind};
use crate::thermal::ThermalModel;

/// A point-in-time reading produced when a run finishes.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Total energy consumed, in joules, including measurement noise.
    pub energy_j: f64,
    /// Virtual wall-clock duration of the run, in seconds.
    pub time_s: f64,
    /// Peak CPU temperature observed, in °C.
    pub peak_temp_c: f64,
    /// Battery level at the end of the run.
    pub battery_level: f64,
}

/// One periodic reading of the simulator's observable state, taken on the
/// virtual clock by the unified sampler ([`EnergySim::enable_sampling`]).
///
/// A sample carries everything the reporting layers need — the E3
/// temperature traces read `(t_s, temp_c)`, telemetry summaries read the
/// battery and energy trajectories — so one sampling pass feeds them all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Virtual time of the sample, in seconds.
    pub t_s: f64,
    /// CPU temperature, in °C.
    pub temp_c: f64,
    /// Battery level fraction.
    pub battery: f64,
    /// Cumulative energy consumed so far, in joules (noise-free).
    pub energy_j: f64,
}

/// The single periodic-sampling mechanism: one interval, one stream of
/// [`Sample`]s, consulted once per integration sub-step.
#[derive(Clone, Debug, Default)]
struct Sampler {
    interval_s: Option<f64>,
    next_s: f64,
    points: Vec<Sample>,
    /// Sample ticks lost to injected sampler stalls.
    stalled: u64,
}

/// The core simulator: executes abstract work and idle periods against a
/// [`Platform`], integrating energy, battery drain, and CPU temperature on
/// a virtual clock.
///
/// Runs are deterministic for a given seed; the per-run measurement noise
/// (the paper's relative standard deviation) is applied when reading the
/// final [`Measurement`].
///
/// # Example
///
/// ```
/// use ent_energy::{EnergySim, Platform, WorkKind};
///
/// let mut sim = EnergySim::new(Platform::system_a(), 42);
/// sim.do_work(WorkKind::Cpu, 2.0e9); // ~1 s of full-speed CPU work
/// sim.sleep_ms(500.0);
/// let m = sim.finish();
/// assert!(m.time_s > 1.4 && m.time_s < 1.6);
/// assert!(m.energy_j > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct EnergySim {
    platform: Platform,
    time_s: f64,
    energy_j: f64,
    battery: BatteryModel,
    thermal: ThermalModel,
    peak_temp_c: f64,
    rng: StdRng,
    sampler: Sampler,
    /// Optional deterministic fault injector. `None` (the default) keeps
    /// the simulator on exactly its historical code path.
    faults: Option<FaultInjector>,
}

/// Default battery capacity: a laptop-scale 50 Wh pack, in joules. The
/// experiment harness overrides the *level*, not the capacity.
const DEFAULT_BATTERY_J: f64 = 50.0 * 3600.0;

impl EnergySim {
    /// Creates a simulator for a platform with a given RNG seed.
    pub fn new(platform: Platform, seed: u64) -> Self {
        let thermal = ThermalModel::new(platform.thermal);
        let peak = thermal.temperature_c();
        EnergySim {
            platform,
            time_s: 0.0,
            energy_j: 0.0,
            battery: BatteryModel::new(DEFAULT_BATTERY_J),
            thermal,
            peak_temp_c: peak,
            rng: StdRng::seed_from_u64(seed),
            sampler: Sampler::default(),
            faults: None,
        }
    }

    /// The platform being simulated.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Enables periodic state sampling at `interval_s` (the E3 temperature
    /// experiments read the temperature column; telemetry summaries read
    /// the battery and energy trajectories).
    pub fn enable_sampling(&mut self, interval_s: f64) {
        self.sampler.interval_s = Some(interval_s.max(1e-3));
        self.sampler.next_s = self.time_s;
        self.sampler.points.clear();
    }

    /// The collected samples, in virtual-time order.
    pub fn samples(&self) -> &[Sample] {
        &self.sampler.points
    }

    /// Sample ticks that were lost to injected sampler stalls.
    pub fn samples_stalled(&self) -> u64 {
        self.sampler.stalled
    }

    /// Installs (or removes) a deterministic fault injector. Brownouts
    /// drain real charge during [`advance`](Self::advance); sensor reads
    /// through [`read_sensor`](Self::read_sensor) observe the injected
    /// dropout/stale/spike/burst regime; sampler ticks may stall. With a
    /// no-op plan (or `None`) every observable is bit-identical to an
    /// uninjected run.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Reads a sensor through the fault layer. Without an injector this is
    /// exactly [`battery_level`](Self::battery_level) /
    /// [`temperature_c`](Self::temperature_c) wrapped in
    /// [`SensorRead::Clean`].
    pub fn read_sensor(&self, kind: SensorKind) -> SensorRead {
        let true_value = match kind {
            SensorKind::Battery => self.battery.level(),
            SensorKind::Temperature => self.thermal.temperature_c(),
        };
        match &self.faults {
            None => SensorRead::Clean(true_value),
            Some(inj) => inj.observe(kind, self.time_s, true_value),
        }
    }

    /// Pins the battery level (fraction), as the harness does before each
    /// experiment to select the boot mode.
    pub fn set_battery_level(&mut self, fraction: f64) {
        self.battery.set_level(fraction);
    }

    /// The battery level queried by `Ext.battery()`.
    pub fn battery_level(&self) -> f64 {
        self.battery.level()
    }

    /// The CPU temperature queried by `Ext.temperature()`.
    pub fn temperature_c(&self) -> f64 {
        self.thermal.temperature_c()
    }

    /// The virtual clock, in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Cumulative energy so far (noise-free; the meter abstractions and
    /// [`EnergySim::finish`] add measurement noise).
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Executes `units` of work of the given kind at full utilization.
    pub fn do_work(&mut self, kind: WorkKind, units: f64) {
        let dt = self.platform.seconds_for(kind, units);
        self.advance(dt, 1.0);
    }

    /// Idles for a number of milliseconds (the ENT `Sim.sleepMs` builtin).
    pub fn sleep_ms(&mut self, ms: f64) {
        self.advance(ms.max(0.0) / 1000.0, 0.0);
    }

    /// Runs for `duration_s` at a fractional utilization — the model for
    /// time-fixed workloads (video capture, emulation, Apps) whose energy
    /// differences come from *power*, not runtime.
    pub fn run_duty_cycle(&mut self, duration_s: f64, utilization: f64) {
        self.advance(duration_s, utilization);
    }

    /// A uniform random double in `[0, 1)` (the ENT `Sim.rand` builtin) —
    /// drawn from the seeded stream so runs stay reproducible.
    pub fn rand(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// The longest single `advance` the simulator will integrate: about
    /// 11.5 virtual days. A hostile `Sim.sleepMs(9e18)` must not spin the
    /// 0.25 s sub-step loop effectively forever.
    const MAX_ADVANCE_S: f64 = 1.0e6;

    /// Advances the clock by `dt` seconds at the given utilization,
    /// integrating power, battery, temperature, and the trace.
    fn advance(&mut self, dt: f64, utilization: f64) {
        // NaN returns here rather than reaching the clamp below —
        // NaN.min(x) is x in Rust.
        if dt.is_nan() || dt <= 0.0 {
            return;
        }
        let dt = dt.min(Self::MAX_ADVANCE_S);
        let watts = self.platform.power_at(utilization);
        // Integrate in sub-steps so traces and thermal dynamics resolve.
        let mut remaining = dt;
        while remaining > 0.0 {
            let h = remaining.min(0.25);
            let step_start_s = self.time_s;
            self.thermal.step(watts, h);
            self.peak_temp_c = self.peak_temp_c.max(self.thermal.temperature_c());
            self.energy_j += watts * h;
            self.battery.drain(watts * h);
            self.time_s += h;
            if let Some(inj) = &self.faults {
                // Brownout steps scheduled inside this sub-step drain real
                // charge (fraction of capacity), beyond the consumed energy.
                let drop = inj.brownout_drop(step_start_s, self.time_s);
                if drop > 0.0 {
                    self.battery.drain(drop * self.battery.capacity_joules());
                }
            }
            if let Some(interval) = self.sampler.interval_s {
                while self.time_s >= self.sampler.next_s {
                    let stalled = self
                        .faults
                        .as_ref()
                        .is_some_and(|inj| inj.sampler_stalled(self.sampler.next_s));
                    if stalled {
                        self.sampler.stalled += 1;
                    } else {
                        self.sampler.points.push(Sample {
                            t_s: self.sampler.next_s,
                            temp_c: self.thermal.temperature_c(),
                            battery: self.battery.level(),
                            energy_j: self.energy_j,
                        });
                    }
                    self.sampler.next_s += interval;
                }
            }
            remaining -= h;
        }
    }

    /// Finishes the run: applies the platform's per-run measurement noise
    /// and returns the final [`Measurement`]. The simulator may continue to
    /// be used afterwards (e.g. between iterations); `finish` is
    /// non-destructive.
    pub fn finish(&mut self) -> Measurement {
        let noise: f64 = 1.0 + self.platform.noise_rsd * self.sample_standard_normal();
        Measurement {
            energy_j: self.energy_j * noise.max(0.5),
            time_s: self.time_s,
            peak_temp_c: self.peak_temp_c,
            battery_level: self.battery.level(),
        }
    }

    /// Box–Muller standard normal from the seeded stream.
    fn sample_standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// A jRAPL-style energy meter: records the counter at construction and
/// reports the delta, the way the paper instruments System A.
///
/// # Example
///
/// ```
/// use ent_energy::{EnergySim, Platform, RaplMeter, WorkKind};
///
/// let mut sim = EnergySim::new(Platform::system_a(), 1);
/// let meter = RaplMeter::start(&sim);
/// sim.do_work(WorkKind::Cpu, 1.0e9);
/// assert!(meter.joules(&sim) > 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RaplMeter {
    start_j: f64,
}

impl RaplMeter {
    /// Starts a measurement window.
    pub fn start(sim: &EnergySim) -> Self {
        RaplMeter {
            start_j: sim.energy_j(),
        }
    }

    /// Energy consumed since the window opened.
    pub fn joules(&self, sim: &EnergySim) -> f64 {
        sim.energy_j() - self.start_j
    }
}

/// A Watts Up? Pro-style wall power meter: like [`RaplMeter`] but measures
/// whole-device energy *including idle draw over elapsed time* — which is
/// what makes time-fixed workloads register savings only through power.
#[derive(Clone, Copy, Debug)]
pub struct WattsUpMeter {
    start_j: f64,
    start_s: f64,
}

impl WattsUpMeter {
    /// Starts a measurement window.
    pub fn start(sim: &EnergySim) -> Self {
        WattsUpMeter {
            start_j: sim.energy_j(),
            start_s: sim.time_s(),
        }
    }

    /// Whole-device energy consumed since the window opened.
    pub fn joules(&self, sim: &EnergySim) -> f64 {
        sim.energy_j() - self.start_j
    }

    /// Average power over the window.
    pub fn average_watts(&self, sim: &EnergySim) -> f64 {
        let dt = sim.time_s() - self.start_s;
        if dt <= 0.0 {
            0.0
        } else {
            self.joules(sim) / dt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_advances_time_and_energy() {
        let mut sim = EnergySim::new(Platform::system_a(), 7);
        sim.do_work(WorkKind::Cpu, 2.0e9);
        assert!((sim.time_s() - 1.0).abs() < 1e-9);
        assert!((sim.energy_j() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn sleep_draws_idle_power() {
        let mut sim = EnergySim::new(Platform::system_a(), 7);
        sim.sleep_ms(1000.0);
        assert!((sim.energy_j() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn duty_cycle_power_is_between_idle_and_active() {
        let mut sim = EnergySim::new(Platform::system_b(), 7);
        sim.run_duty_cycle(10.0, 0.5);
        let avg_w = sim.energy_j() / sim.time_s();
        let p = Platform::system_b();
        assert!(avg_w > p.idle_watts && avg_w < p.active_watts);
    }

    #[test]
    fn battery_drains_with_consumption() {
        let mut sim = EnergySim::new(Platform::system_a(), 7);
        sim.set_battery_level(0.5);
        let before = sim.battery_level();
        sim.do_work(WorkKind::Cpu, 2.0e10); // 10 s at 30 W = 300 J
        assert!(sim.battery_level() < before);
    }

    #[test]
    fn identical_seeds_give_identical_measurements() {
        let run = |seed| {
            let mut sim = EnergySim::new(Platform::system_c(), seed);
            sim.do_work(WorkKind::Encode, 5.0e8);
            sim.finish()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).energy_j, run(100).energy_j);
    }

    #[test]
    fn noise_stays_within_a_few_percent() {
        let raw = {
            let mut sim = EnergySim::new(Platform::system_a(), 3);
            sim.do_work(WorkKind::Cpu, 2.0e9);
            sim.energy_j()
        };
        for seed in 0..50 {
            let mut sim = EnergySim::new(Platform::system_a(), seed);
            sim.do_work(WorkKind::Cpu, 2.0e9);
            let m = sim.finish();
            let rel = (m.energy_j - raw).abs() / raw;
            assert!(rel < 0.08, "noise too large: {rel}");
        }
    }

    #[test]
    fn sampling_collects_points() {
        let mut sim = EnergySim::new(Platform::system_a(), 7);
        sim.enable_sampling(0.5);
        sim.do_work(WorkKind::Cpu, 4.0e9); // 2 s
        assert!(sim.samples().len() >= 4);
        // Times strictly increasing, energy non-decreasing, battery
        // non-increasing:
        for w in sim.samples().windows(2) {
            assert!(w[0].t_s < w[1].t_s);
            assert!(w[0].energy_j <= w[1].energy_j);
            assert!(w[0].battery >= w[1].battery);
        }
    }

    #[test]
    fn peak_temperature_is_tracked() {
        let mut sim = EnergySim::new(Platform::system_a(), 7);
        sim.do_work(WorkKind::Cpu, 6.0e10); // 30 s full load
        let m = sim.finish();
        assert!(m.peak_temp_c > Platform::system_a().thermal.ambient_c);
    }

    #[test]
    fn meters_report_window_deltas() {
        let mut sim = EnergySim::new(Platform::system_b(), 5);
        sim.do_work(WorkKind::Cpu, 3.0e8); // pre-window
        let rapl = RaplMeter::start(&sim);
        let wu = WattsUpMeter::start(&sim);
        sim.do_work(WorkKind::Cpu, 3.0e8); // 1 s active
        sim.sleep_ms(1000.0);
        assert!((rapl.joules(&sim) - wu.joules(&sim)).abs() < 1e-9);
        let avg = wu.average_watts(&sim);
        let p = Platform::system_b();
        assert!(avg > p.idle_watts && avg < p.active_watts);
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let mut a = EnergySim::new(Platform::system_a(), 11);
        let mut b = EnergySim::new(Platform::system_a(), 11);
        for _ in 0..10 {
            assert_eq!(a.rand(), b.rand());
        }
    }

    #[test]
    fn hostile_durations_terminate_instead_of_spinning() {
        let mut sim = EnergySim::new(Platform::system_a(), 7);
        sim.sleep_ms(f64::NAN);
        assert_eq!(sim.time_s(), 0.0);
        sim.sleep_ms(i64::MAX as f64); // ~292 million years requested
        assert!((sim.time_s() - EnergySim::MAX_ADVANCE_S).abs() < 1e-6);
    }

    #[test]
    fn noop_injector_changes_nothing() {
        use crate::fault::{FaultInjector, FaultPlan};
        let run = |inject: bool| {
            let mut sim = EnergySim::new(Platform::system_a(), 42);
            if inject {
                sim.set_fault_injector(Some(FaultInjector::new(FaultPlan::default(), 9)));
            }
            sim.set_battery_level(0.75);
            sim.enable_sampling(0.5);
            sim.do_work(WorkKind::Cpu, 4.0e9);
            sim.sleep_ms(300.0);
            (
                sim.samples().to_vec(),
                sim.samples_stalled(),
                sim.battery_level(),
                sim.finish(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn brownouts_drain_real_charge() {
        use crate::fault::{FaultInjector, FaultPlan};
        let plan = FaultPlan {
            brownouts: 2,
            brownout_drop: 0.1,
            horizon_s: 5.0,
            ..FaultPlan::default()
        };
        let base = {
            let mut sim = EnergySim::new(Platform::system_a(), 42);
            sim.set_battery_level(0.9);
            sim.do_work(WorkKind::Cpu, 2.0e10); // 10 s, past the horizon
            sim.battery_level()
        };
        let mut sim = EnergySim::new(Platform::system_a(), 42);
        sim.set_fault_injector(Some(FaultInjector::new(plan, 3)));
        sim.set_battery_level(0.9);
        sim.do_work(WorkKind::Cpu, 2.0e10);
        let faulted = sim.battery_level();
        assert!(
            (base - faulted - 0.2).abs() < 1e-9,
            "expected two 0.1 brownout steps: base {base}, faulted {faulted}"
        );
    }

    #[test]
    fn sampler_stalls_drop_ticks_but_count_them() {
        use crate::fault::{FaultInjector, FaultPlan};
        let plan = FaultPlan {
            stall_rate: 1.0,
            ..FaultPlan::default()
        };
        let mut sim = EnergySim::new(Platform::system_a(), 42);
        sim.set_fault_injector(Some(FaultInjector::new(plan, 3)));
        sim.enable_sampling(0.5);
        sim.do_work(WorkKind::Cpu, 4.0e9); // 2 s
        assert!(sim.samples().is_empty());
        assert!(sim.samples_stalled() >= 4);
    }

    #[test]
    fn read_sensor_reports_faults_only_when_injected() {
        use crate::fault::{FaultInjector, FaultPlan, SensorKind, SensorRead};
        let mut sim = EnergySim::new(Platform::system_a(), 42);
        sim.set_battery_level(0.6);
        assert_eq!(
            sim.read_sensor(SensorKind::Battery),
            SensorRead::Clean(sim.battery_level())
        );
        sim.set_fault_injector(Some(FaultInjector::new(
            FaultPlan {
                dropout_rate: 1.0,
                ..FaultPlan::default()
            },
            5,
        )));
        assert_eq!(sim.read_sensor(SensorKind::Battery), SensorRead::Dropped);
        assert_eq!(
            sim.read_sensor(SensorKind::Temperature),
            SensorRead::Dropped
        );
    }
}
