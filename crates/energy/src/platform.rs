//! Platform models for the paper's three evaluation systems.

use std::fmt;

/// Which of the paper's evaluation platforms a [`Platform`] models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// System A: Intel i5 laptop, Ubuntu 14.04, measured with jRAPL.
    SystemA,
    /// System B: Raspberry Pi 2 Model B, measured with a Watts Up? Pro.
    SystemB,
    /// System C: Nexus 5X, Android 6.0, measured with a Watts Up? Pro and
    /// driven by RERAN input replay.
    SystemC,
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlatformKind::SystemA => "System A (Intel laptop)",
            PlatformKind::SystemB => "System B (Raspberry Pi 2)",
            PlatformKind::SystemC => "System C (Nexus 5X)",
        })
    }
}

/// The kind of work a benchmark issues; each kind has its own cost scale so
/// that, e.g., crypto work is more expensive per unit than file I/O.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// General CPU computation.
    Cpu,
    /// File or database I/O.
    Io,
    /// Network transfer.
    Net,
    /// Rendering / rasterization.
    Render,
    /// Audio/video encoding.
    Encode,
    /// Cryptographic computation.
    Crypto,
}

impl WorkKind {
    /// Parses a work kind from the string used by ENT programs
    /// (`Sim.work("cpu", units)`). Unknown strings fall back to [`Cpu`].
    ///
    /// [`Cpu`]: WorkKind::Cpu
    pub fn parse(s: &str) -> WorkKind {
        match s {
            "io" => WorkKind::Io,
            "net" => WorkKind::Net,
            "render" => WorkKind::Render,
            "encode" => WorkKind::Encode,
            "crypto" => WorkKind::Crypto,
            _ => WorkKind::Cpu,
        }
    }

    /// Abstract operations per work unit — the knob that differentiates
    /// data-intensive from computation-intensive benchmarks.
    pub fn ops_per_unit(&self) -> f64 {
        match self {
            WorkKind::Cpu => 1.0,
            WorkKind::Io => 0.4,
            WorkKind::Net => 0.25,
            WorkKind::Render => 1.6,
            WorkKind::Encode => 1.3,
            WorkKind::Crypto => 2.0,
        }
    }
}

/// An OS-level CPU frequency governor, as in the paper's §5 ("All
/// experiments were run using the respective systems default power
/// governors") and §6.2's observation that application-level duty cycles
/// interact with OS-level power management.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Governor {
    /// Scale frequency with demand (the Linux default on the paper's
    /// systems); low duty cycles drop into low-power states.
    #[default]
    Ondemand,
    /// Pin the CPU at full frequency: fastest, but idle periods still
    /// burn near-active power.
    Performance,
    /// Cap the frequency: cheaper joules-per-second at the cost of
    /// longer runtimes.
    Powersave,
}

impl Governor {
    /// Frequency multiplier relative to full speed.
    pub fn freq_scale(&self) -> f64 {
        match self {
            Governor::Ondemand | Governor::Performance => 1.0,
            Governor::Powersave => 0.6,
        }
    }

    /// The utilization floor the governor keeps the package at (clocks
    /// held high under `performance` draw power even while idle).
    pub fn utilization_floor(&self) -> f64 {
        match self {
            Governor::Performance => 0.25,
            Governor::Ondemand | Governor::Powersave => 0.0,
        }
    }

    /// Active-power multiplier (lower voltage at capped frequency).
    pub fn active_power_scale(&self) -> f64 {
        match self {
            Governor::Ondemand | Governor::Performance => 1.0,
            Governor::Powersave => 0.55,
        }
    }
}

impl fmt::Display for Governor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Governor::Ondemand => "ondemand",
            Governor::Performance => "performance",
            Governor::Powersave => "powersave",
        })
    }
}

/// Thermal behavior parameters for Newton's-law heating/cooling:
/// `dT/dt = heat · P − cool · (T − ambient)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThermalParams {
    /// Ambient / idle CPU temperature in °C.
    pub ambient_c: f64,
    /// Heating coefficient (°C per joule).
    pub heat: f64,
    /// Cooling coefficient (fraction per second).
    pub cool: f64,
}

/// A simulated hardware platform: its power curve, speed, thermal
/// parameters, and measurement noise.
///
/// # Example
///
/// ```
/// use ent_energy::Platform;
///
/// let a = Platform::system_a();
/// assert!(a.active_watts > a.idle_watts);
/// let b = Platform::system_b();
/// assert!(b.active_watts < a.active_watts); // the Pi draws far less
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// Which paper system this models.
    pub kind: PlatformKind,
    /// Power drawn when idle (display, RAM, idle CPU), in watts.
    pub idle_watts: f64,
    /// Power drawn at full CPU utilization, in watts.
    pub active_watts: f64,
    /// Abstract operations per second at full speed.
    pub ops_per_sec: f64,
    /// Thermal model parameters.
    pub thermal: ThermalParams,
    /// Relative standard deviation of run-to-run measurement noise
    /// (the paper reports ≈2 % for A, ≤2 % for B, 2–5 % for C).
    pub noise_rsd: f64,
    /// The OS frequency governor in effect.
    pub governor: Governor,
}

impl Platform {
    /// System A: the Intel i5 laptop. Active package power in the tens of
    /// watts; jRAPL-style counters are low-noise.
    pub fn system_a() -> Platform {
        Platform {
            kind: PlatformKind::SystemA,
            idle_watts: 4.0,
            active_watts: 30.0,
            ops_per_sec: 2.0e9,
            thermal: ThermalParams {
                ambient_c: 42.0,
                heat: 0.042,
                cool: 0.033,
            },
            noise_rsd: 0.012,
            governor: Governor::Ondemand,
        }
    }

    /// System B: the Raspberry Pi 2. Whole-board power under 4 W; workloads
    /// are typically *time-fixed* (continuous monitoring), so savings come
    /// from power rather than runtime.
    pub fn system_b() -> Platform {
        Platform {
            kind: PlatformKind::SystemB,
            idle_watts: 1.6,
            active_watts: 3.8,
            ops_per_sec: 3.0e8,
            thermal: ThermalParams {
                ambient_c: 45.0,
                heat: 0.9,
                cool: 0.06,
            },
            noise_rsd: 0.008,
            governor: Governor::Ondemand,
        }
    }

    /// System C: the Nexus 5X. Phone-scale power; the paper observed the
    /// highest run-to-run deviation here (touch replay, network variance).
    pub fn system_c() -> Platform {
        Platform {
            kind: PlatformKind::SystemC,
            idle_watts: 0.9,
            active_watts: 4.5,
            ops_per_sec: 6.0e8,
            thermal: ThermalParams {
                ambient_c: 38.0,
                heat: 0.8,
                cool: 0.05,
            },
            noise_rsd: 0.020,
            governor: Governor::Ondemand,
        }
    }

    /// Returns a copy of this platform running a different governor.
    pub fn with_governor(mut self, governor: Governor) -> Platform {
        self.governor = governor;
        self
    }

    /// Power drawn at a given utilization in `[0, 1]`, with a mildly convex
    /// curve (race-to-idle hardware is more efficient at low duty cycles,
    /// matching the paper's observation that OS-level `ondemand` governors
    /// drop components into lower-power modes between bursts). The
    /// governor shifts the curve: `performance` keeps a utilization floor,
    /// `powersave` caps the active power.
    pub fn power_at(&self, utilization: f64) -> f64 {
        let u = utilization
            .clamp(0.0, 1.0)
            .max(self.governor.utilization_floor());
        let active = self.idle_watts
            + (self.active_watts - self.idle_watts) * self.governor.active_power_scale();
        self.idle_watts + (active - self.idle_watts) * u.powf(1.08)
    }

    /// Seconds needed to execute `units` of `kind` work at the governor's
    /// frequency.
    pub fn seconds_for(&self, kind: WorkKind, units: f64) -> f64 {
        (units * kind.ops_per_unit() / (self.ops_per_sec * self.governor.freq_scale())).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_power_ordering() {
        let (a, b, c) = (
            Platform::system_a(),
            Platform::system_b(),
            Platform::system_c(),
        );
        assert!(a.active_watts > c.active_watts);
        assert!(c.active_watts > b.active_watts || b.active_watts > 0.0);
        for p in [&a, &b, &c] {
            assert!(p.active_watts > p.idle_watts);
            assert!(p.noise_rsd > 0.0 && p.noise_rsd < 0.1);
        }
    }

    #[test]
    fn power_at_is_monotone_and_bounded() {
        let p = Platform::system_a();
        assert!((p.power_at(0.0) - p.idle_watts).abs() < 1e-9);
        assert!((p.power_at(1.0) - p.active_watts).abs() < 1e-9);
        let mut prev = 0.0;
        for i in 0..=10 {
            let w = p.power_at(i as f64 / 10.0);
            assert!(w >= prev);
            prev = w;
        }
        // Clamping:
        assert_eq!(p.power_at(2.0), p.active_watts);
        assert_eq!(p.power_at(-1.0), p.idle_watts);
    }

    #[test]
    fn work_kinds_scale_time() {
        let p = Platform::system_b();
        let cpu = p.seconds_for(WorkKind::Cpu, 1e6);
        let crypto = p.seconds_for(WorkKind::Crypto, 1e6);
        let net = p.seconds_for(WorkKind::Net, 1e6);
        assert!(crypto > cpu);
        assert!(net < cpu);
    }

    #[test]
    fn work_kind_parse_falls_back_to_cpu() {
        assert_eq!(WorkKind::parse("crypto"), WorkKind::Crypto);
        assert_eq!(WorkKind::parse("render"), WorkKind::Render);
        assert_eq!(WorkKind::parse("mystery"), WorkKind::Cpu);
    }

    #[test]
    fn display_names_mention_the_hardware() {
        assert!(PlatformKind::SystemB.to_string().contains("Pi"));
    }

    #[test]
    fn powersave_trades_time_for_power() {
        let normal = Platform::system_a();
        let saver = Platform::system_a().with_governor(Governor::Powersave);
        assert!(saver.seconds_for(WorkKind::Cpu, 1e9) > normal.seconds_for(WorkKind::Cpu, 1e9));
        assert!(saver.power_at(1.0) < normal.power_at(1.0));
    }

    #[test]
    fn performance_burns_power_at_idle_duty() {
        let normal = Platform::system_a();
        let perf = Platform::system_a().with_governor(Governor::Performance);
        assert!(perf.power_at(0.05) > normal.power_at(0.05));
        // Same full-load power and speed.
        assert!((perf.power_at(1.0) - normal.power_at(1.0)).abs() < 1e-9);
        assert_eq!(
            perf.seconds_for(WorkKind::Cpu, 1e9),
            normal.seconds_for(WorkKind::Cpu, 1e9)
        );
    }

    #[test]
    fn governor_display_and_default() {
        assert_eq!(Governor::default(), Governor::Ondemand);
        assert_eq!(Governor::Powersave.to_string(), "powersave");
    }
}
