//! Simulated energy-conscious platforms for the ENT reproduction.
//!
//! The paper evaluates ENT on three physical systems: an Intel i5 laptop
//! measured with jRAPL (System A), a Raspberry Pi 2 measured with a
//! Watts Up? Pro (System B), and a Nexus 5X queried through Android's
//! `BatteryManager` (System C). This crate substitutes faithful simulators:
//! a virtual clock, calibrated power curves, a battery model, a
//! Newton's-law thermal model, and per-run measurement noise matching the
//! relative standard deviations the paper reports.
//!
//! The simulator is the *substrate* ENT programs execute against: the
//! runtime's `Ext.battery()` / `Ext.temperature()` builtins read it, and
//! `Sim.work` / `Sim.sleepMs` drive it.
//!
//! # Example
//!
//! ```
//! use ent_energy::{EnergySim, Platform, WorkKind};
//!
//! // Crawl a 1000-resource site on the laptop, then idle briefly.
//! let mut sim = EnergySim::new(Platform::system_a(), 7);
//! sim.set_battery_level(0.9);
//! sim.do_work(WorkKind::Net, 1000.0 * 1.0e6);
//! sim.sleep_ms(200.0);
//! let m = sim.finish();
//! assert!(m.energy_j > 0.0);
//! assert!(m.battery_level < 0.9);
//! ```

mod battery;
mod fault;
mod platform;
mod sim;
mod thermal;

pub use battery::BatteryModel;
pub use fault::{FaultInjector, FaultPlan, SensorKind, SensorRead};
pub use platform::{Governor, Platform, PlatformKind, ThermalParams, WorkKind};
pub use sim::{EnergySim, Measurement, RaplMeter, Sample, WattsUpMeter};
pub use thermal::ThermalModel;
