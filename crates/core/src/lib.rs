//! The ENT mixed type system and compiler pipeline.
//!
//! This crate is the primary contribution of the reproduced paper,
//! "Proactive and Adaptive Energy-Aware Programming with Mixed Typechecking"
//! (Canino & Liu, PLDI 2017): a type system that combines *static* mode
//! qualifiers (proactive energy management — the programmer characterizes a
//! component's energy behavior at compile time) with *dynamic* mode types
//! (adaptive energy management — the mode is decided at run time by an
//! attributor), unified so that the waterfall invariant holds across the
//! static/dynamic boundary.
//!
//! # The waterfall invariant
//!
//! An object may only message objects whose mode is at or below its own:
//! a component booted for `energy_saver` can never accidentally drive a
//! `full_throttle` workload. Statically-typed sends are checked at compile
//! time ([`typecheck`]); dynamically-typed objects must be `snapshot`-ted —
//! which evaluates their attributor, checks the declared bounds, and yields
//! a static existential type — before they can be messaged.
//!
//! # Quick start
//!
//! ```
//! use ent_core::compile;
//!
//! let compiled = compile(
//!     "modes { energy_saver <= managed; managed <= full_throttle; }
//!      class Agent@mode<? <= X> {
//!        attributor {
//!          if (Ext.battery() >= 0.75) { return full_throttle; }
//!          else if (Ext.battery() >= 0.50) { return managed; }
//!          else { return energy_saver; }
//!        }
//!        mcase<int> depth = mcase{ energy_saver: 1; managed: 2; full_throttle: 3; };
//!        int work(int units) { return units * (this.depth <| X); }
//!      }
//!      class Main {
//!        int main() {
//!          let da = new Agent();
//!          let a = snapshot da [_, _];
//!          return a.work(10);
//!        }
//!      }",
//! )?;
//! assert_eq!(compiled.program.mode_table.modes().len(), 3);
//! # Ok::<(), ent_core::CompileError>(())
//! ```

mod diag;
mod pipeline;
mod subtype;
mod typeck;

pub use diag::{TypeError, TypeErrorKind};
pub use pipeline::{compile, compile_unchecked, CompileError, CompiledProgram};
pub use subtype::{ancestor_args, is_subtype, mode_eq_static};
pub use typeck::{typecheck, typecheck_obligations, Obligation, ObligationKind};
