//! The compiler pipeline: source text → parsed program → validated class
//! table → typechecked program.

use std::error::Error;
use std::fmt;

use ent_syntax::{parse_program, ClassTable, Program, SyntaxError, TableError};

use crate::diag::TypeError;
use crate::typeck::{typecheck_obligations, Obligation};

/// Everything that can go wrong while compiling an ENT program.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// Lexing or parsing failed.
    Syntax(SyntaxError),
    /// The class structure is malformed (duplicate classes, bad
    /// inheritance, attributor mismatches, …).
    Table(TableError),
    /// Typechecking failed; all collected diagnostics are included.
    Type(Vec<TypeError>),
}

impl CompileError {
    /// Renders the error(s) with line/column positions against the source.
    pub fn render(&self, src: &str) -> String {
        match self {
            CompileError::Syntax(e) => e.render(src),
            CompileError::Table(e) => e.to_string(),
            CompileError::Type(errors) => errors
                .iter()
                .map(|e| e.render(src))
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Syntax(e) => write!(f, "{e}"),
            CompileError::Table(e) => write!(f, "{e}"),
            CompileError::Type(errors) => {
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for CompileError {}

impl From<SyntaxError> for CompileError {
    fn from(e: SyntaxError) -> Self {
        CompileError::Syntax(e)
    }
}

impl From<TableError> for CompileError {
    fn from(e: TableError) -> Self {
        CompileError::Table(e)
    }
}

/// A successfully compiled ENT program: the AST plus its validated class
/// table, ready for the interpreter.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The parsed, typechecked program.
    pub program: Program,
    /// Its validated class table.
    pub table: ClassTable,
    /// The enforcement obligations the typechecker left for the runtime
    /// (boundaries, call sites, field reads), in source order. Empty for
    /// [`compile_unchecked`] programs, which skip classification entirely.
    pub obligations: Vec<Obligation>,
}

/// Compiles ENT source text: parse, build the class table, typecheck.
///
/// # Errors
///
/// Returns the first syntax or table error, or every type error found.
///
/// # Example
///
/// ```
/// use ent_core::compile;
///
/// let compiled = compile(
///     "modes { energy_saver <= managed; managed <= full_throttle; }
///      class Site@mode<S> {
///        int resources;
///        int crawl(int depth) { return this.resources * depth; }
///      }
///      class Main {
///        int main() {
///          let s = new Site@mode<managed>(100);
///          return s.crawl(2);
///        }
///      }",
/// )?;
/// assert_eq!(compiled.program.classes.len(), 2);
/// # Ok::<(), ent_core::CompileError>(())
/// ```
pub fn compile(src: &str) -> Result<CompiledProgram, CompileError> {
    let program = parse_program(src)?;
    let table = ClassTable::new(&program)?;
    let obligations = typecheck_obligations(&program, &table).map_err(CompileError::Type)?;
    Ok(CompiledProgram {
        program,
        table,
        obligations,
    })
}

/// Parses and builds the class table *without* typechecking — used by the
/// baseline runtimes that deliberately skip the type system (the paper's
/// "silent" configuration) and by negative tests.
///
/// # Errors
///
/// Returns syntax or table errors only.
pub fn compile_unchecked(src: &str) -> Result<CompiledProgram, CompileError> {
    let program = parse_program(src)?;
    let table = ClassTable::new(&program)?;
    Ok(CompiledProgram {
        program,
        table,
        obligations: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::TypeErrorKind;

    #[test]
    fn compile_accepts_well_typed_program() {
        let src = "modes { low <= high; }
            class Main { int main() { return 42; } }";
        assert!(compile(src).is_ok());
    }

    #[test]
    fn compile_reports_syntax_errors() {
        assert!(matches!(compile("class {"), Err(CompileError::Syntax(_))));
    }

    #[test]
    fn compile_reports_table_errors() {
        assert!(matches!(
            compile("class A { } class A { }"),
            Err(CompileError::Table(_))
        ));
    }

    #[test]
    fn compile_reports_type_errors_with_kinds() {
        let src = "modes { low <= high; }
            class Heavy@mode<H> { int run() { return 1; } }
            class Light@mode<L> {
              Heavy@mode<high> h;
              int go() { return this.h.run(); }
            }
            class Main {
              int main() {
                let l = new Light@mode<low>(new Heavy@mode<high>());
                return l.go();
              }
            }";
        // Inside Light (internal mode L, unconstrained), calling a
        // full-`high` Heavy violates the waterfall invariant.
        match compile(src) {
            Err(CompileError::Type(errors)) => {
                assert!(errors
                    .iter()
                    .any(|e| e.kind == TypeErrorKind::WaterfallViolation));
            }
            other => panic!("expected type errors, got {other:?}"),
        }
    }

    #[test]
    fn compile_collects_enforcement_obligations() {
        use crate::typeck::ObligationKind;
        let src = "modes { low <= high; }
            class Probe@mode<? <= P> {
              attributor { return low; }
              int reading;
              int poll() { return this.reading; }
            }
            class Main {
              int main() {
                let d = new Probe(7);
                let p = snapshot d [low, high];
                return p.poll();
              }
            }";
        let compiled = compile(src).unwrap();
        let kinds: Vec<ObligationKind> = compiled.obligations.iter().map(|o| o.kind).collect();
        // `this.reading` is a field read, the snapshot is a boundary, and
        // `p.poll()` is a call site — all owed to the runtime.
        assert!(kinds.contains(&ObligationKind::FieldRead));
        assert!(kinds.contains(&ObligationKind::Boundary));
        assert!(kinds.contains(&ObligationKind::CallSite));
        let snap = compiled
            .obligations
            .iter()
            .find(|o| o.kind == ObligationKind::Boundary)
            .unwrap();
        assert_eq!(snap.class, "Probe");
        assert_eq!(snap.member, "snapshot");
        // `compile_unchecked` performs no classification at all.
        assert!(compile_unchecked(src).unwrap().obligations.is_empty());
    }

    #[test]
    fn compile_unchecked_skips_type_errors() {
        let src = "modes { low <= high; }
            class Main { int main() { return \"not an int\"; } }";
        assert!(compile(src).is_err());
        assert!(compile_unchecked(src).is_ok());
    }

    #[test]
    fn render_produces_locations() {
        let src = "modes { low <= high; }\nclass Main { int main() { return true; } }";
        let err = compile(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("2:"), "rendered: {rendered}");
    }
}
