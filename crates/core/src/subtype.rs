//! The subtyping judgment `K ⊢ τ <: τ'`.
//!
//! Subtyping in ENT is deliberately spare (§4.1): FJ nominal subtyping,
//! reflexivity/transitivity, covariant `mcase`, and existential
//! introduction/elimination (handled in this reproduction by eagerly opening
//! snapshot existentials in the typechecker). Mode arguments are *invariant*
//! — mode discipline is enforced by the waterfall check at message sends,
//! not by subsumption.

use ent_modes::{ConstraintSet, Mode, ModeArgs, ModeTable, StaticMode};
use ent_syntax::{ClassName, ClassTable, Type};

/// Decides `K ⊢ sub <: sup` for programmer types.
///
/// # Example
///
/// ```
/// use ent_core::is_subtype;
/// use ent_modes::ConstraintSet;
/// use ent_syntax::{parse_program, ClassTable, Type};
///
/// let p = parse_program(
///     "modes { low <= high; }
///      class Rule@mode<R> { }
///      class DepthRule@mode<X> extends Rule@mode<X> { }",
/// ).unwrap();
/// let table = ClassTable::new(&p).unwrap();
/// let k = ConstraintSet::new();
///
/// let sub: Type = ent_syntax::parse_program(
///     "modes { low <= high; } class T { DepthRule@mode<low> f; }"
/// ).unwrap().classes[0].fields[0].ty.clone();
/// let sup: Type = ent_syntax::parse_program(
///     "modes { low <= high; } class T { Rule@mode<low> f; }"
/// ).unwrap().classes[0].fields[0].ty.clone();
/// assert!(is_subtype(&table, &p.mode_table, &k, &sub, &sup));
/// ```
pub fn is_subtype(
    table: &ClassTable,
    modes: &ModeTable,
    k: &ConstraintSet,
    sub: &Type,
    sup: &Type,
) -> bool {
    match (sub, sup) {
        // Error recovery: a poison type is compatible with anything.
        (Type::Error, _) | (_, Type::Error) => true,
        (a, b) if a == b => true,
        (Type::Prim(a), Type::Prim(b)) => a == b,
        (Type::ModeValue, Type::ModeValue) => true,
        // Arrays are immutable, so element covariance is sound.
        (Type::Array(a), Type::Array(b)) => is_subtype(table, modes, k, a, b),
        // Covariant mode cases (the paper's only ENT-specific subtype rule).
        (Type::MCase(a), Type::MCase(b)) => is_subtype(table, modes, k, a, b),
        (Type::Object { class: c, args: ai }, Type::Object { class: d, args: bi }) => {
            // Everything is a subtype of Object at its own mode (and Object
            // is mode-transparent).
            if d == &ClassName::object() {
                return true;
            }
            if !table.is_subclass(c, d) {
                return false;
            }
            // Compute c's view of its ancestor d's mode arguments and
            // compare invariantly.
            let Some(view) = ancestor_args(table, c, ai, d) else {
                return false;
            };
            mode_args_eq(modes, k, &view, bi)
        }
        _ => false,
    }
}

/// Walks the inheritance chain from `c` (instantiated with `args`) up to
/// ancestor `d`, threading the superclass instantiations, and returns the
/// resulting mode arguments for `d`.
pub fn ancestor_args(
    table: &ClassTable,
    c: &ClassName,
    args: &ModeArgs,
    d: &ClassName,
) -> Option<ModeArgs> {
    let mut cur = c.clone();
    let mut cur_args = args.clone();
    loop {
        if &cur == d {
            return Some(cur_args);
        }
        let decl = table.class(&cur)?;
        let sup_name = decl.superclass.clone();
        if sup_name == ClassName::object() {
            return None;
        }
        let subst = table.class_subst(&cur, &cur_args);
        let sup = table.class(&sup_name)?;
        let flat: Vec<StaticMode> = if decl.super_args.is_empty() {
            sup.mode_params
                .bounds
                .iter()
                .map(|b| b.lo.clone())
                .collect()
        } else {
            decl.super_args.iter().map(|m| m.apply(&subst)).collect()
        };
        // Own-mode preservation (validated by the table) means the first
        // super argument tracks the object's own mode — in particular a
        // dynamic `?` stays dynamic through the chain.
        let mode = if cur_args.mode.is_dynamic() {
            Mode::Dynamic
        } else if let Some(first) = flat.first() {
            Mode::Static(first.clone())
        } else {
            Mode::Static(StaticMode::Bot)
        };
        let rest = flat.into_iter().skip(1).collect();
        cur_args = ModeArgs::new(mode, rest);
        cur = sup_name;
    }
}

/// Mode equality under constraints: `a ≤ b` and `b ≤ a`.
pub fn mode_eq_static(
    modes: &ModeTable,
    k: &ConstraintSet,
    a: &StaticMode,
    b: &StaticMode,
) -> bool {
    a == b || (k.entails(modes, a, b) && k.entails(modes, b, a))
}

fn mode_args_eq(modes: &ModeTable, k: &ConstraintSet, a: &ModeArgs, b: &ModeArgs) -> bool {
    let mode_ok = match (&a.mode, &b.mode) {
        (Mode::Dynamic, Mode::Dynamic) => true,
        (Mode::Static(x), Mode::Static(y)) => mode_eq_static(modes, k, x, y),
        _ => false,
    };
    mode_ok
        && a.rest.len() == b.rest.len()
        && a.rest
            .iter()
            .zip(&b.rest)
            .all(|(x, y)| mode_eq_static(modes, k, x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ent_modes::{ModeName, ModeVar};
    use ent_syntax::parse_program;

    fn setup() -> (ClassTable, ModeTable) {
        let p = parse_program(
            "modes { low <= high; }
             class Rule@mode<R> { }
             class DepthRule@mode<X> extends Rule@mode<X> { }
             class MaxRule@mode<Y> extends Rule@mode<Y> { }
             class Plain { }
             class SubPlain extends Plain { }",
        )
        .unwrap();
        let t = ClassTable::new(&p).unwrap();
        (t, p.mode_table)
    }

    fn obj(class: &str, mode: StaticMode) -> Type {
        Type::object(class, ModeArgs::of_static(mode))
    }

    fn low() -> StaticMode {
        StaticMode::Const(ModeName::new("low"))
    }

    fn high() -> StaticMode {
        StaticMode::Const(ModeName::new("high"))
    }

    #[test]
    fn reflexivity() {
        let (t, m) = setup();
        let k = ConstraintSet::new();
        let ty = obj("Rule", low());
        assert!(is_subtype(&t, &m, &k, &ty, &ty));
        assert!(is_subtype(&t, &m, &k, &Type::INT, &Type::INT));
    }

    #[test]
    fn nominal_subtyping_preserves_mode() {
        let (t, m) = setup();
        let k = ConstraintSet::new();
        assert!(is_subtype(
            &t,
            &m,
            &k,
            &obj("DepthRule", low()),
            &obj("Rule", low())
        ));
        // Mode is invariant:
        assert!(!is_subtype(
            &t,
            &m,
            &k,
            &obj("DepthRule", low()),
            &obj("Rule", high())
        ));
        // And not the other direction:
        assert!(!is_subtype(
            &t,
            &m,
            &k,
            &obj("Rule", low()),
            &obj("DepthRule", low())
        ));
        // Siblings unrelated:
        assert!(!is_subtype(
            &t,
            &m,
            &k,
            &obj("DepthRule", low()),
            &obj("MaxRule", low())
        ));
    }

    #[test]
    fn everything_is_an_object() {
        let (t, m) = setup();
        let k = ConstraintSet::new();
        let object = Type::object("Object", ModeArgs::of_static(StaticMode::Bot));
        assert!(is_subtype(&t, &m, &k, &obj("Rule", high()), &object));
        assert!(is_subtype(
            &t,
            &m,
            &k,
            &obj("Plain", StaticMode::Bot),
            &object
        ));
    }

    #[test]
    fn neutral_chain_subtyping() {
        let (t, m) = setup();
        let k = ConstraintSet::new();
        assert!(is_subtype(
            &t,
            &m,
            &k,
            &obj("SubPlain", StaticMode::Bot),
            &obj("Plain", StaticMode::Bot)
        ));
    }

    #[test]
    fn mcase_is_covariant() {
        let (t, m) = setup();
        let k = ConstraintSet::new();
        let sub = Type::MCase(Box::new(obj("DepthRule", low())));
        let sup = Type::MCase(Box::new(obj("Rule", low())));
        assert!(is_subtype(&t, &m, &k, &sub, &sup));
        assert!(!is_subtype(&t, &m, &k, &sup, &sub));
    }

    #[test]
    fn arrays_are_covariant() {
        let (t, m) = setup();
        let k = ConstraintSet::new();
        let sub = Type::Array(Box::new(obj("DepthRule", low())));
        let sup = Type::Array(Box::new(obj("Rule", low())));
        assert!(is_subtype(&t, &m, &k, &sub, &sup));
        assert!(!is_subtype(
            &t,
            &m,
            &k,
            &Type::Array(Box::new(Type::INT)),
            &Type::Array(Box::new(Type::STR))
        ));
    }

    #[test]
    fn mode_equality_uses_constraints() {
        let (t, m) = setup();
        let x = StaticMode::Var(ModeVar::new("X"));
        let mut k = ConstraintSet::new();
        k.push(x.clone(), low());
        k.push(low(), x.clone());
        assert!(is_subtype(
            &t,
            &m,
            &k,
            &obj("DepthRule", x.clone()),
            &obj("Rule", low())
        ));
        // Without both directions, not equal:
        let mut k1 = ConstraintSet::new();
        k1.push(x.clone(), low());
        assert!(!is_subtype(
            &t,
            &m,
            &k1,
            &obj("DepthRule", x),
            &obj("Rule", low())
        ));
    }

    #[test]
    fn dynamic_modes_match_dynamic_only() {
        let (t, m) = setup();
        let k = ConstraintSet::new();
        let dyn_depth = Type::object("DepthRule", ModeArgs::of_dynamic());
        let dyn_rule = Type::object("Rule", ModeArgs::of_dynamic());
        // (No dynamic classes in this table, but the judgment itself is
        // structural.)
        assert!(is_subtype(&t, &m, &k, &dyn_depth, &dyn_rule));
        assert!(!is_subtype(&t, &m, &k, &dyn_depth, &obj("Rule", low())));
    }

    #[test]
    fn primitives_do_not_cross() {
        let (t, m) = setup();
        let k = ConstraintSet::new();
        assert!(!is_subtype(&t, &m, &k, &Type::INT, &Type::DOUBLE));
        assert!(!is_subtype(&t, &m, &k, &Type::STR, &obj("Rule", low())));
    }
}
