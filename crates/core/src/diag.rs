//! Type-error diagnostics.

use std::error::Error;
use std::fmt;

use ent_syntax::{LineMap, Span};

/// The category of a type error — useful for tests and tooling that assert
/// on *why* a program was rejected, mirroring the paper's discussion of
/// "energy bugs" surfaced at compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TypeErrorKind {
    /// A message send violates the static waterfall invariant
    /// (`sfall(T, Γ(this), K)` fails): the receiver's mode is not known to
    /// be at or below the sender's mode.
    WaterfallViolation,
    /// A message was sent directly to an object with the dynamic mode `?`
    /// (it must be `snapshot`-ted first).
    MessagedDynamic,
    /// Reference to an unknown class.
    UnknownClass,
    /// Reference to an unknown variable, field, or method.
    UnknownMember,
    /// An expression's type does not match what the context requires.
    Mismatch,
    /// A mode annotation is malformed: wrong arity, wrong dynamicness, an
    /// out-of-scope mode variable, or unsatisfied mode bounds.
    BadModeInstantiation,
    /// A `snapshot` of something that is not a dynamic object.
    BadSnapshot,
    /// A mode case that does not cover every declared mode, or an
    /// elimination with no mode available.
    BadModeCase,
    /// A cast between unrelated types (statically doomed).
    BadCast,
    /// Wrong number of arguments.
    Arity,
    /// A structural problem with a declaration (override mismatch, missing
    /// `Main`, constructor parameter mentioning a hidden internal mode, …).
    BadDeclaration,
}

impl fmt::Display for TypeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeErrorKind::WaterfallViolation => "waterfall violation",
            TypeErrorKind::MessagedDynamic => "message to dynamic object",
            TypeErrorKind::UnknownClass => "unknown class",
            TypeErrorKind::UnknownMember => "unknown member",
            TypeErrorKind::Mismatch => "type mismatch",
            TypeErrorKind::BadModeInstantiation => "bad mode instantiation",
            TypeErrorKind::BadSnapshot => "bad snapshot",
            TypeErrorKind::BadModeCase => "bad mode case",
            TypeErrorKind::BadCast => "bad cast",
            TypeErrorKind::Arity => "arity mismatch",
            TypeErrorKind::BadDeclaration => "bad declaration",
        })
    }
}

/// A type error with its source span and a human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeError {
    /// The category of the error.
    pub kind: TypeErrorKind,
    /// What went wrong, in terms of the program's names and modes.
    pub message: String,
    /// Where it happened.
    pub span: Span,
}

impl TypeError {
    /// Creates a type error.
    pub fn new(kind: TypeErrorKind, message: impl Into<String>, span: Span) -> Self {
        TypeError {
            kind,
            message: message.into(),
            span,
        }
    }

    /// Renders the error with `line:col` resolved against the source text.
    pub fn render(&self, src: &str) -> String {
        let map = LineMap::new(src);
        format!(
            "{}: {}: {}",
            map.describe(self.span),
            self.kind,
            self.message
        )
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_location_kind_and_message() {
        let e = TypeError::new(
            TypeErrorKind::WaterfallViolation,
            "receiver mode `full_throttle` exceeds sender mode `managed`",
            Span::new(2, 3),
        );
        let rendered = e.render("a\nbc");
        assert!(rendered.starts_with("2:1: waterfall violation"));
        assert!(rendered.contains("full_throttle"));
    }

    #[test]
    fn display_is_nonempty() {
        let e = TypeError::new(TypeErrorKind::Mismatch, "int vs string", Span::DUMMY);
        assert!(e.to_string().contains("int vs string"));
    }
}
