//! The mixed type system of ENT (§4.1 of the paper).
//!
//! The judgment implemented here is `Γ; K ⊢ e : τ`, parameterized by the
//! class table and the program's mode lattice. The ENT-specific rules are:
//!
//! * **T-New** — instantiations must match the class's dynamicness and
//!   entail the declared mode bounds;
//! * **T-Msg** — every message send checks the *static waterfall invariant*
//!   `sfall`: the receiver's mode (or the method's overriding mode) must be
//!   `≤` the sender's mode under `K`; objects with the dynamic mode `?`
//!   cannot be messaged at all;
//! * **T-Snapshot** — `snapshot e [lo, hi]` on a dynamic object produces a
//!   bounded existential, which this checker opens eagerly: a fresh mode
//!   variable with `lo ≤ mt ≤ hi` pushed into `K`;
//! * **T-MCase** / **T-ElimCase** — mode cases must cover every declared
//!   mode and eliminate at a mode constant or an in-scope mode variable.

use ent_modes::{Bounded, ConstraintSet, Mode, ModeArgs, ModeTable, ModeVar, StaticMode, Subst};
use ent_syntax::{
    BinOp, ClassDecl, ClassName, ClassTable, Expr, ExprKind, Ident, MethodDecl, PrimType, Program,
    Span, Stmt, Type, UnOp,
};

use crate::diag::{TypeError, TypeErrorKind};
use crate::subtype::{ancestor_args, is_subtype};

/// What the runtime must enforce at one program point. The typechecker
/// discharges what it can statically; each site it cannot fully decide —
/// the internal/external boundary of the mixed system — is emitted as an
/// explicit obligation instead of implying any particular enforcement
/// strategy. The runtime's `Enforcement` seam decides *how* each kind is
/// discharged: the guarded strategy checks boundaries deeply (snapshot
/// attributor + bounds + lazy copy) and call sites via the dynamic
/// waterfall; the transient strategy performs shallow first-order checks
/// at all three kinds, including field reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObligationKind {
    /// A `snapshot e [lo, hi]` boundary: the attributed mode must land
    /// inside the declared bounds before the dynamic object crosses into
    /// statically-moded code.
    Boundary,
    /// A message send: the receiver-side mode must be at or below the
    /// sender's closure mode (the waterfall invariant, re-checked
    /// dynamically because attributors and opened existentials are
    /// runtime-bound).
    CallSite,
    /// A field read on an object: statically safe under the guarded
    /// strategy (the typechecker forbids reads through dynamic views), a
    /// shallow tag check under the transient strategy.
    FieldRead,
}

impl ObligationKind {
    /// The CLI/telemetry-facing name of this obligation kind.
    pub fn name(self) -> &'static str {
        match self {
            ObligationKind::Boundary => "boundary",
            ObligationKind::CallSite => "call-site",
            ObligationKind::FieldRead => "field-read",
        }
    }
}

/// One enforcement obligation: a program point the runtime must check,
/// with enough provenance (class, member, span) to blame the site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Obligation {
    /// Which check the runtime owes at this point.
    pub kind: ObligationKind,
    /// The class the checked object belongs to.
    pub class: String,
    /// The member involved: the invoked method, the read field, or
    /// `"snapshot"` for a boundary.
    pub member: String,
    /// The source location of the check site (for blame).
    pub span: Span,
}

/// Typechecks a whole program against its class table.
///
/// # Errors
///
/// Returns every [`TypeError`] found (checking continues past errors within
/// reason, so a program with several bugs reports several diagnostics).
///
/// # Example
///
/// ```
/// use ent_core::typecheck;
/// use ent_syntax::{parse_program, ClassTable};
///
/// let p = parse_program(
///     "modes { low <= high; }
///      class Main { int main() { return 1 + 2; } }",
/// ).unwrap();
/// let table = ClassTable::new(&p).unwrap();
/// assert!(typecheck(&p, &table).is_ok());
/// ```
pub fn typecheck(program: &Program, table: &ClassTable) -> Result<(), Vec<TypeError>> {
    typecheck_obligations(program, table).map(|_| ())
}

/// Typechecks a whole program and returns the enforcement obligations its
/// internal/external boundaries owe the runtime, in source order.
///
/// # Errors
///
/// Returns every [`TypeError`] found, exactly as [`typecheck`].
pub fn typecheck_obligations(
    program: &Program,
    table: &ClassTable,
) -> Result<Vec<Obligation>, Vec<TypeError>> {
    let mut tc = Typechecker {
        table,
        modes: &program.mode_table,
        errors: Vec::new(),
        obligations: Vec::new(),
        fresh: 0,
    };
    for class in &program.classes {
        tc.check_class(class);
    }
    if tc.errors.is_empty() {
        Ok(tc.obligations)
    } else {
        Err(tc.errors)
    }
}

/// The typing context for one method/attributor body.
struct Ctx {
    /// Γ: variable bindings, innermost last.
    vars: Vec<(Ident, Type)>,
    /// K: the constraint set.
    k: ConstraintSet,
    /// Mode variables in scope (class + method + opened existentials).
    mode_vars: Vec<ModeVar>,
    /// The type of `this` (internal view).
    this_ty: Type,
    /// The sender mode used for `sfall` checks.
    sender_mode: StaticMode,
    /// The enclosing class's internal mode (for implicit elimination).
    internal_mode: StaticMode,
    /// Expected return type.
    ret: Type,
    /// The enclosing class (kept for diagnostics).
    #[allow(dead_code)]
    class: ClassName,
}

impl Ctx {
    fn lookup(&self, name: &Ident) -> Option<&Type> {
        self.vars
            .iter()
            .rev()
            .find(|(x, _)| x == name)
            .map(|(_, t)| t)
    }
}

struct Typechecker<'a> {
    table: &'a ClassTable,
    modes: &'a ModeTable,
    errors: Vec<TypeError>,
    obligations: Vec<Obligation>,
    fresh: usize,
}

impl<'a> Typechecker<'a> {
    fn err(&mut self, kind: TypeErrorKind, message: impl Into<String>, span: Span) -> Type {
        self.errors.push(TypeError::new(kind, message, span));
        Type::Error
    }

    fn oblige(&mut self, kind: ObligationKind, class: &str, member: &str, span: Span) {
        self.obligations.push(Obligation {
            kind,
            class: class.to_string(),
            member: member.to_string(),
            span,
        });
    }

    fn fresh_var(&mut self) -> ModeVar {
        self.fresh += 1;
        ModeVar::new(format!("$snap{}", self.fresh))
    }

    // ---- declarations ------------------------------------------------------

    fn check_class(&mut self, class: &ClassDecl) {
        let internal = internal_mode_of(class);
        let mut base_k = ConstraintSet::new();
        base_k.extend_pairs(class.mode_params.cons());
        let mode_vars = class.mode_params.params();

        let this_ty = internal_this_type(class);

        // Field types and initializers.
        for field in &class.fields {
            let fty = self.wf_type(&mode_vars, &field.ty, field.span, false);
            if let Some(init) = &field.init {
                let mut ctx = Ctx {
                    vars: Vec::new(),
                    k: base_k.clone(),
                    mode_vars: mode_vars.clone(),
                    this_ty: this_ty.clone(),
                    sender_mode: internal.clone(),
                    internal_mode: internal.clone(),
                    ret: fty.clone(),
                    class: class.name.clone(),
                };
                self.check_expr(&mut ctx, init, &fty);
            }
        }

        // Class-level attributor: `this` is in scope; the attributor is
        // invoked externally (under the snapshotter's mode) but may inspect
        // the object's own state, so it sees the internal view. Its body
        // must produce a mode value.
        if let Some(attributor) = &class.attributor {
            let mut ctx = Ctx {
                vars: Vec::new(),
                k: base_k.clone(),
                mode_vars: mode_vars.clone(),
                this_ty: this_ty.clone(),
                sender_mode: StaticMode::Top,
                internal_mode: internal.clone(),
                ret: Type::ModeValue,
                class: class.name.clone(),
            };
            self.check_expr(&mut ctx, &attributor.body, &Type::ModeValue);
        }

        for method in &class.methods {
            self.check_method(class, method, &base_k, &mode_vars, &this_ty, &internal);
            self.check_override(class, method);
        }
    }

    fn check_method(
        &mut self,
        class: &ClassDecl,
        method: &MethodDecl,
        base_k: &ConstraintSet,
        class_mode_vars: &[ModeVar],
        this_ty: &Type,
        internal: &StaticMode,
    ) {
        let mut k = base_k.clone();
        let mut mode_vars = class_mode_vars.to_vec();
        for bound in &method.mode_params {
            if mode_vars.contains(&bound.var) {
                self.err(
                    TypeErrorKind::BadDeclaration,
                    format!(
                        "method mode parameter `{}` shadows a class parameter",
                        bound.var
                    ),
                    method.span,
                );
                continue;
            }
            mode_vars.push(bound.var.clone());
            k.extend_pairs(bound.cons());
        }

        // Method-level mode override / attributor determine the sender mode
        // for sfall checks inside the body.
        let sender_mode = if method.attributor.is_some() {
            // A method with an attributor has a dynamic mode determined at
            // run time; the body is checked under the method's internal
            // view of its own mode — the first declared mode parameter
            // (`int f() attributor {...}` may declare `f<X>` to name it,
            // Listing 3's `saveImages`), or a fresh variable otherwise.
            // The internal view is runtime-bound, so it must not leak into
            // the externally-visible signature.
            let var = match method.mode_params.first() {
                Some(b) => {
                    let leaks = method
                        .params
                        .iter()
                        .map(|(t, _)| t)
                        .chain(std::iter::once(&method.ret))
                        .any(|t| type_mentions_var(t, &b.var));
                    if leaks {
                        self.err(
                            TypeErrorKind::BadDeclaration,
                            format!(
                                "the attributor-bound mode `{}` of `{}` cannot appear in its signature (it is only known at run time)",
                                b.var, method.name
                            ),
                            method.span,
                        );
                    }
                    b.var.clone()
                }
                None => {
                    let var = ModeVar::new(format!("SelfM_{}", method.name));
                    mode_vars.push(var.clone());
                    k.extend_pairs(Bounded::unconstrained(var.clone()).cons());
                    var
                }
            };
            StaticMode::Var(var)
        } else if let Some(mode) = &method.mode {
            self.wf_mode(&mode_vars, mode, method.span);
            mode.clone()
        } else {
            internal.clone()
        };

        // Main.main boots the program under ⊤ (boot(P) = cl(⊤, e)).
        let sender_mode = if class.name.as_str() == "Main" && method.name.as_str() == "main" {
            StaticMode::Top
        } else {
            sender_mode
        };

        let ret = self.wf_type(&mode_vars, &method.ret, method.span, false);
        let mut vars = Vec::new();
        for (ty, name) in &method.params {
            let pty = self.wf_type(&mode_vars, ty, method.span, false);
            vars.push((name.clone(), pty));
        }

        // The method-level attributor body must produce a mode value.
        if let Some(attributor) = &method.attributor {
            let mut ctx = Ctx {
                vars: vars.clone(),
                k: k.clone(),
                mode_vars: mode_vars.clone(),
                this_ty: this_ty.clone(),
                sender_mode: StaticMode::Top,
                internal_mode: internal.clone(),
                ret: Type::ModeValue,
                class: class.name.clone(),
            };
            self.check_expr(&mut ctx, &attributor.body, &Type::ModeValue);
        }

        let mut ctx = Ctx {
            vars,
            k,
            mode_vars,
            this_ty: this_ty.clone(),
            sender_mode,
            internal_mode: internal.clone(),
            ret: ret.clone(),
            class: class.name.clone(),
        };
        self.check_expr(&mut ctx, &method.body, &ret);
    }

    /// Overriding methods must preserve the overridden signature (FJ-style
    /// invariant overriding, including the method-level mode).
    fn check_override(&mut self, class: &ClassDecl, method: &MethodDecl) {
        if class.superclass == ClassName::object() {
            return;
        }
        let own_args = internal_args_of(class);
        let Some(sup_args) = ancestor_args(self.table, &class.name, &own_args, &class.superclass)
        else {
            return;
        };
        let Some(sup_method) = self
            .table
            .method(&class.superclass, &sup_args, &method.name)
        else {
            return;
        };
        let own = self
            .table
            .method(&class.name, &own_args, &method.name)
            .expect("method exists on its own class");
        let k = ConstraintSet::new();
        let params_ok = own.params.len() == sup_method.params.len()
            && own
                .params
                .iter()
                .zip(&sup_method.params)
                .all(|(a, b)| type_eq(self.table, self.modes, &k, a, b));
        let ret_ok = type_eq(self.table, self.modes, &k, &own.ret, &sup_method.ret);
        let mode_ok = own.mode == sup_method.mode;
        if !(params_ok && ret_ok && mode_ok) {
            self.err(
                TypeErrorKind::BadDeclaration,
                format!(
                    "method `{}` overrides `{}::{}` with an incompatible signature",
                    method.name, sup_method.owner, method.name
                ),
                method.span,
            );
        }
    }

    // ---- well-formedness ---------------------------------------------------

    fn wf_mode(&mut self, scope: &[ModeVar], mode: &StaticMode, span: Span) {
        if let StaticMode::Var(v) = mode {
            if !scope.contains(v) && !v.as_str().starts_with("$snap") {
                self.err(
                    TypeErrorKind::BadModeInstantiation,
                    format!("mode variable `{v}` is not in scope"),
                    span,
                );
            }
        }
    }

    /// Checks a programmer-written type and normalizes it (e.g. a bare
    /// reference to a pinned-mode class becomes that pinned mode). With
    /// `wildcard` set, a bare reference to a moded class is allowed and
    /// returned unchanged for the caller to resolve against a value type.
    fn wf_type(&mut self, scope: &[ModeVar], ty: &Type, span: Span, wildcard: bool) -> Type {
        match ty {
            Type::Prim(_) | Type::ModeValue | Type::Error => ty.clone(),
            Type::Array(t) => Type::Array(Box::new(self.wf_type(scope, t, span, wildcard))),
            Type::MCase(t) => Type::MCase(Box::new(self.wf_type(scope, t, span, false))),
            Type::Exists { .. } => ty.clone(),
            Type::Object { class, args } => {
                if class == &ClassName::object() {
                    return ty.clone();
                }
                let Some(decl) = self.table.class(class) else {
                    return self.err(
                        TypeErrorKind::UnknownClass,
                        format!("unknown class `{class}`"),
                        span,
                    );
                };
                let mp = &decl.mode_params;
                let bare = args.rest.is_empty() && args.mode == Mode::Static(StaticMode::Bot);
                let neutral = !mp.dynamic && mp.bounds.is_empty();
                let pinned =
                    !mp.dynamic && !mp.bounds.is_empty() && mp.bounds.iter().all(|b| b.lo == b.hi);

                if neutral {
                    if !bare {
                        return self.err(
                            TypeErrorKind::BadModeInstantiation,
                            format!("class `{class}` takes no mode arguments"),
                            span,
                        );
                    }
                    return ty.clone();
                }
                if bare {
                    if pinned {
                        // Normalize `W` to `W@mode<pinned...>`.
                        let mode = mp.bounds[0].lo.clone();
                        let rest = mp.bounds[1..].iter().map(|b| b.lo.clone()).collect();
                        return Type::Object {
                            class: class.clone(),
                            args: ModeArgs::new(Mode::Static(mode), rest),
                        };
                    }
                    if wildcard {
                        return ty.clone();
                    }
                    return self.err(
                        TypeErrorKind::BadModeInstantiation,
                        format!("class `{class}` requires a mode annotation here"),
                        span,
                    );
                }
                // Explicit annotation: arity and scope checks.
                if args.rest.len() != mp.extra_arity() {
                    return self.err(
                        TypeErrorKind::BadModeInstantiation,
                        format!(
                            "class `{class}` takes {} extra mode arguments, found {}",
                            mp.extra_arity(),
                            args.rest.len()
                        ),
                        span,
                    );
                }
                if args.mode.is_dynamic() && !mp.dynamic {
                    return self.err(
                        TypeErrorKind::BadModeInstantiation,
                        format!("class `{class}` is not dynamic"),
                        span,
                    );
                }
                if let Mode::Static(m) = &args.mode {
                    self.wf_mode(scope, m, span);
                }
                for m in &args.rest {
                    self.wf_mode(scope, m, span);
                }
                ty.clone()
            }
        }
    }

    // ---- expressions --------------------------------------------------------

    /// Checks `e` against an expected type, applying the two implicit
    /// coercions of the surface language: mcase auto-elimination (a
    /// `mcase<T>` used where `T` is expected) and array-literal element
    /// propagation.
    fn check_expr(&mut self, ctx: &mut Ctx, e: &Expr, expected: &Type) -> Type {
        match (&e.kind, expected) {
            (ExprKind::ArrayLit(items), Type::Array(elem)) => {
                for item in items {
                    self.check_expr(ctx, item, elem);
                }
                expected.clone()
            }
            (ExprKind::MCase { ty: None, arms }, Type::MCase(elem)) => {
                self.check_mcase_arms(ctx, arms, elem, e.span);
                expected.clone()
            }
            // Mode-argument inference at `new`: an uninstantiated creation
            // checked against an object type of the same (non-dynamic)
            // class adopts the expected instantiation, Energy-Types style.
            (
                ExprKind::New {
                    class,
                    args: None,
                    ctor_args,
                },
                Type::Object {
                    class: expected_class,
                    args: expected_args,
                },
            ) if class == expected_class
                && !expected_args.is_dynamic()
                && self.table.class(class).is_some_and(|d| {
                    !d.mode_params.dynamic && !d.mode_params.bounds.is_empty()
                }) =>
            {
                self.infer_new(ctx, class, Some(expected_args), ctor_args, e.span);
                expected.clone()
            }
            (ExprKind::If { cond, then, els }, _) if els.is_some() => {
                self.check_expr(ctx, cond, &Type::BOOL);
                self.check_expr(ctx, then, expected);
                if let Some(els) = els {
                    self.check_expr(ctx, els, expected);
                }
                expected.clone()
            }
            (ExprKind::Block(_), _) => {
                let t = self.infer_block(ctx, e, Some(expected));
                self.coerce(ctx, &t, expected, e.span);
                expected.clone()
            }
            _ => {
                let t = self.infer(ctx, e);
                self.coerce(ctx, &t, expected, e.span);
                expected.clone()
            }
        }
    }

    fn coerce(&mut self, ctx: &Ctx, found: &Type, expected: &Type, span: Span) {
        if is_subtype(self.table, self.modes, &ctx.k, found, expected) {
            return;
        }
        // Implicit mcase elimination: mcase<T> where T is expected.
        if let Type::MCase(inner) = found {
            if !matches!(expected, Type::MCase(_))
                && is_subtype(self.table, self.modes, &ctx.k, inner, expected)
            {
                return;
            }
        }
        self.err(
            TypeErrorKind::Mismatch,
            format!("expected `{expected}`, found `{found}`"),
            span,
        );
    }
}

impl<'a> Typechecker<'a> {
    fn infer_expr(&mut self, ctx: &mut Ctx, e: &Expr) -> Type {
        match &e.kind {
            ExprKind::Lit(l) => l.ty(),
            ExprKind::ModeConst(_) => Type::ModeValue,
            ExprKind::This => ctx.this_ty.clone(),
            ExprKind::Var(x) => match ctx.lookup(x) {
                Some(t) => t.clone(),
                None => self.err(
                    TypeErrorKind::UnknownMember,
                    format!("unknown variable `{x}`"),
                    e.span,
                ),
            },
            ExprKind::Field { recv, name } => self.infer_field(ctx, recv, name, e.span),
            ExprKind::New {
                class,
                args,
                ctor_args,
            } => self.infer_new(ctx, class, args.as_ref(), ctor_args, e.span),
            ExprKind::Call {
                recv,
                method,
                mode_args,
                args,
            } => self.infer_call(ctx, recv, method, mode_args, args, e.span),
            ExprKind::Builtin { ns, name, args } => self.infer_builtin(ctx, ns, name, args, e.span),
            ExprKind::Cast { ty, expr } => {
                let target = self.wf_type(&ctx.mode_vars.clone(), ty, e.span, false);
                let source = self.infer(ctx, expr);
                let up = is_subtype(self.table, self.modes, &ctx.k, &source, &target);
                let down = is_subtype(self.table, self.modes, &ctx.k, &target, &source);
                if !up && !down {
                    return self.err(
                        TypeErrorKind::BadCast,
                        format!("cast between unrelated types `{source}` and `{target}`"),
                        e.span,
                    );
                }
                target
            }
            ExprKind::Snapshot { expr, lo, hi } => self.infer_snapshot(ctx, expr, lo, hi, e.span),
            ExprKind::MCase { ty, arms } => {
                let elem = match ty {
                    Some(t) => self.wf_type(&ctx.mode_vars.clone(), t, e.span, false),
                    None => {
                        let Some((_, first)) = arms.first() else {
                            return self.err(TypeErrorKind::BadModeCase, "empty mode case", e.span);
                        };
                        self.infer(ctx, first)
                    }
                };
                self.check_mcase_arms(ctx, arms, &elem, e.span);
                Type::MCase(Box::new(elem))
            }
            ExprKind::Elim { expr, mode } => {
                let t = self.infer(ctx, expr);
                let Type::MCase(inner) = t else {
                    if t == Type::Error {
                        return Type::Error;
                    }
                    return self.err(
                        TypeErrorKind::BadModeCase,
                        format!("`<|` applies to mode cases, found `{t}`"),
                        e.span,
                    );
                };
                match mode {
                    Some(m) => {
                        self.wf_mode(&ctx.mode_vars.clone(), m, e.span);
                        if let StaticMode::Const(c) = m {
                            if !self.modes.contains(c) {
                                return self.err(
                                    TypeErrorKind::BadModeCase,
                                    format!("`{c}` is not a declared mode"),
                                    e.span,
                                );
                            }
                        }
                    }
                    None => {
                        if ctx.internal_mode == StaticMode::Bot {
                            return self.err(
                                TypeErrorKind::BadModeCase,
                                "implicit elimination `<| _` requires an enclosing mode-carrying class",
                                e.span,
                            );
                        }
                    }
                }
                *inner
            }
            ExprKind::Binary { op, lhs, rhs } => self.infer_binary(ctx, *op, lhs, rhs, e.span),
            ExprKind::Unary { op, expr } => {
                let t = self.infer(ctx, expr);
                match op {
                    UnOp::Not => {
                        self.coerce(ctx, &t, &Type::BOOL, e.span);
                        Type::BOOL
                    }
                    UnOp::Neg => {
                        if matches!(
                            t,
                            Type::Prim(PrimType::Int) | Type::Prim(PrimType::Double) | Type::Error
                        ) {
                            t
                        } else {
                            self.err(
                                TypeErrorKind::Mismatch,
                                format!("cannot negate `{t}`"),
                                e.span,
                            )
                        }
                    }
                }
            }
            ExprKind::If { cond, then, els } => {
                self.check_expr(ctx, cond, &Type::BOOL);
                let t1 = self.infer(ctx, then);
                match els {
                    None => Type::UNIT,
                    Some(els) => {
                        let t2 = self.infer(ctx, els);
                        self.join(ctx, &t1, &t2, e.span)
                    }
                }
            }
            ExprKind::Block(_) => self.infer_block(ctx, e, None),
            ExprKind::Try { body, handler } => {
                let t1 = self.infer(ctx, body);
                let t2 = self.infer(ctx, handler);
                self.join(ctx, &t1, &t2, e.span)
            }
            ExprKind::ArrayLit(items) => {
                if items.is_empty() {
                    return self.err(
                        TypeErrorKind::Mismatch,
                        "cannot infer the element type of an empty array; annotate the binding",
                        e.span,
                    );
                }
                let mut elem = self.infer(ctx, &items[0]);
                for item in &items[1..] {
                    let t = self.infer(ctx, item);
                    elem = self.join(ctx, &elem, &t, item.span);
                }
                Type::Array(Box::new(elem))
            }
        }
    }

    /// Entry point used throughout: `Γ; K ⊢ e : τ`.
    fn infer(&mut self, ctx: &mut Ctx, e: &Expr) -> Type {
        self.infer_expr(ctx, e)
    }

    fn join(&mut self, ctx: &Ctx, a: &Type, b: &Type, span: Span) -> Type {
        if is_subtype(self.table, self.modes, &ctx.k, a, b) {
            return b.clone();
        }
        if is_subtype(self.table, self.modes, &ctx.k, b, a) {
            return a.clone();
        }
        self.err(
            TypeErrorKind::Mismatch,
            format!("branches have incompatible types `{a}` and `{b}`"),
            span,
        )
    }

    fn infer_block(&mut self, ctx: &mut Ctx, e: &Expr, expected: Option<&Type>) -> Type {
        let ExprKind::Block(stmts) = &e.kind else {
            unreachable!("infer_block on non-block");
        };
        let scope_depth = ctx.vars.len();
        let mut last_ty = Type::UNIT;
        for (i, stmt) in stmts.iter().enumerate() {
            let is_last = i + 1 == stmts.len();
            match stmt {
                Stmt::Let { ty, name, value } => {
                    let bty = match ty {
                        Some(ann) => {
                            let norm = self.wf_type(&ctx.mode_vars.clone(), ann, value.span, true);
                            // A bare moded-class annotation adopts the
                            // value's type (paper: `Site s = snapshot ...`).
                            if let Type::Object { class, args } = &norm {
                                let bare = args.rest.is_empty()
                                    && args.mode == Mode::Static(StaticMode::Bot);
                                let moded = self
                                    .table
                                    .class(class)
                                    .is_some_and(|d| !d.mode_params.bounds.is_empty());
                                if bare && moded {
                                    let vty = self.infer(ctx, value);
                                    match &vty {
                                        Type::Object { class: vc, .. }
                                            if self.table.is_subclass(vc, class) =>
                                        {
                                            ctx.vars.push((name.clone(), vty));
                                            last_ty = Type::UNIT;
                                            continue;
                                        }
                                        Type::Error => {
                                            ctx.vars.push((name.clone(), Type::Error));
                                            last_ty = Type::UNIT;
                                            continue;
                                        }
                                        _ => {
                                            self.err(
                                                TypeErrorKind::Mismatch,
                                                format!(
                                                    "expected an object of class `{class}`, found `{vty}`"
                                                ),
                                                value.span,
                                            );
                                            ctx.vars.push((name.clone(), Type::Error));
                                            last_ty = Type::UNIT;
                                            continue;
                                        }
                                    }
                                }
                            }
                            self.check_expr(ctx, value, &norm);
                            norm
                        }
                        None => self.infer(ctx, value),
                    };
                    ctx.vars.push((name.clone(), bty));
                    last_ty = Type::UNIT;
                }
                Stmt::Expr(inner) => {
                    last_ty = if is_last {
                        match expected {
                            Some(t) => self.check_expr(ctx, inner, t),
                            None => self.infer(ctx, inner),
                        }
                    } else {
                        self.infer(ctx, inner)
                    };
                }
                Stmt::Return(inner) => {
                    let ret = ctx.ret.clone();
                    self.check_expr(ctx, inner, &ret);
                    last_ty = ret;
                }
            }
        }
        ctx.vars.truncate(scope_depth);
        last_ty
    }

    fn check_mcase_arms(
        &mut self,
        ctx: &mut Ctx,
        arms: &[(ent_modes::ModeName, Expr)],
        elem: &Type,
        span: Span,
    ) {
        // T-MCase: the arms must cover modes(P), each exactly once.
        let declared = self.modes.modes();
        for m in declared {
            let count = arms.iter().filter(|(am, _)| am == m).count();
            if count == 0 {
                self.err(
                    TypeErrorKind::BadModeCase,
                    format!("mode case is missing an arm for mode `{m}`"),
                    span,
                );
            } else if count > 1 {
                self.err(
                    TypeErrorKind::BadModeCase,
                    format!("mode case has {count} arms for mode `{m}`"),
                    span,
                );
            }
        }
        for (_, arm) in arms {
            self.check_expr(ctx, arm, elem);
        }
    }

    fn infer_field(&mut self, ctx: &mut Ctx, recv: &Expr, name: &Ident, span: Span) -> Type {
        let rty = self.infer(ctx, recv);
        let Type::Object { class, args } = &rty else {
            if rty == Type::Error {
                return Type::Error;
            }
            return self.err(
                TypeErrorKind::UnknownMember,
                format!("`{rty}` has no fields"),
                span,
            );
        };
        if args.is_dynamic() && !matches!(recv.kind, ExprKind::This) {
            return self.err(
                TypeErrorKind::MessagedDynamic,
                format!(
                    "cannot read fields of a dynamic object of class `{class}`; snapshot it first"
                ),
                span,
            );
        }
        let fields = self.table.fields(class, args);
        match fields.into_iter().find(|f| &f.name == name) {
            Some(f) => {
                self.oblige(
                    ObligationKind::FieldRead,
                    class.as_str(),
                    name.as_str(),
                    span,
                );
                f.ty
            }
            None => self.err(
                TypeErrorKind::UnknownMember,
                format!("class `{class}` has no field `{name}`"),
                span,
            ),
        }
    }

    fn infer_new(
        &mut self,
        ctx: &mut Ctx,
        class: &ClassName,
        args: Option<&ModeArgs>,
        ctor_args: &[Expr],
        span: Span,
    ) -> Type {
        let Some(decl) = self.table.class(class) else {
            return self.err(
                TypeErrorKind::UnknownClass,
                format!("unknown class `{class}`"),
                span,
            );
        };
        let mp = decl.mode_params.clone();
        let args = match args {
            Some(a) => a.clone(),
            None => {
                // Defaults: dynamic class → `?`; neutral → ⊥; pinned → its
                // pinned modes; otherwise the instantiation is required.
                if mp.dynamic {
                    if mp.extra_arity() > 0 {
                        return self.err(
                            TypeErrorKind::BadModeInstantiation,
                            format!("class `{class}` has extra mode parameters; instantiate them explicitly"),
                            span,
                        );
                    }
                    ModeArgs::of_dynamic()
                } else if mp.bounds.is_empty() {
                    ModeArgs::of_static(StaticMode::Bot)
                } else if mp.bounds.iter().all(|b| b.lo == b.hi) {
                    ModeArgs::new(
                        Mode::Static(mp.bounds[0].lo.clone()),
                        mp.bounds[1..].iter().map(|b| b.lo.clone()).collect(),
                    )
                } else {
                    return self.err(
                        TypeErrorKind::BadModeInstantiation,
                        format!("class `{class}` requires a mode instantiation"),
                        span,
                    );
                }
            }
        };

        // T-New: ι = ?, ι' iff cmode(∆) = ?.
        if args.is_dynamic() != mp.dynamic {
            return self.err(
                TypeErrorKind::BadModeInstantiation,
                if mp.dynamic {
                    format!("class `{class}` is dynamic; instantiate it with `?`")
                } else {
                    format!("class `{class}` is not dynamic; it cannot be instantiated with `?`")
                },
                span,
            );
        }
        if args.rest.len() != mp.extra_arity() {
            return self.err(
                TypeErrorKind::BadModeInstantiation,
                format!(
                    "class `{class}` takes {} extra mode arguments, found {}",
                    mp.extra_arity(),
                    args.rest.len()
                ),
                span,
            );
        }
        if let Mode::Static(m) = &args.mode {
            self.wf_mode(&ctx.mode_vars.clone(), m, span);
        }
        for m in &args.rest {
            self.wf_mode(&ctx.mode_vars.clone(), m, span);
        }

        // K ⊨ cons(∆{ι/param(∆)}): the instantiated bounds must be entailed.
        // For a dynamic class the internal parameter stays abstract; its
        // bounds are enforced at snapshot time.
        let subst = self.table.class_subst(class, &args);
        let skip_first = mp.dynamic;
        for (i, bound) in mp.bounds.iter().enumerate() {
            if skip_first && i == 0 {
                continue;
            }
            let inst = StaticMode::Var(bound.var.clone()).apply(&subst);
            let lo = bound.lo.apply(&subst);
            let hi = bound.hi.apply(&subst);
            if !ctx.k.entails(self.modes, &lo, &inst) || !ctx.k.entails(self.modes, &inst, &hi) {
                self.err(
                    TypeErrorKind::BadModeInstantiation,
                    format!(
                        "mode argument `{inst}` of class `{class}` does not satisfy the bound `{lo} ≤ {} ≤ {hi}`",
                        bound.var
                    ),
                    span,
                );
            }
        }

        // Constructor arguments, positionally against uninitialized fields.
        let params = self.table.ctor_params(class, &args);
        if params.len() != ctor_args.len() {
            return self.err(
                TypeErrorKind::Arity,
                format!(
                    "class `{class}` takes {} constructor arguments, found {}",
                    params.len(),
                    ctor_args.len()
                ),
                span,
            );
        }
        let internal_var = mp.bounds.first().map(|b| b.var.clone());
        for (param, arg) in params.iter().zip(ctor_args) {
            if mp.dynamic {
                if let Some(v) = &internal_var {
                    if type_mentions_var(&param.ty, v) {
                        self.err(
                            TypeErrorKind::BadDeclaration,
                            format!(
                                "constructor parameter `{}` of dynamic class `{class}` mentions the hidden internal mode `{v}`",
                                param.name
                            ),
                            span,
                        );
                        continue;
                    }
                }
            }
            self.check_expr(ctx, arg, &param.ty);
        }

        Type::Object {
            class: class.clone(),
            args,
        }
    }

    fn infer_call(
        &mut self,
        ctx: &mut Ctx,
        recv: &Expr,
        method: &Ident,
        mode_args: &[StaticMode],
        args: &[Expr],
        span: Span,
    ) -> Type {
        let rty = self.infer(ctx, recv);
        let Type::Object { class, args: rargs } = &rty else {
            if rty == Type::Error {
                return Type::Error;
            }
            return self.err(
                TypeErrorKind::UnknownMember,
                format!("`{rty}` has no methods"),
                span,
            );
        };
        // T-Msg premise: the receiver type must not be dynamic. `this` is
        // exempt because it carries the internal (static) view inside
        // method bodies; the dynamic view only appears externally.
        if rargs.is_dynamic() && !matches!(recv.kind, ExprKind::This) {
            return self.err(
                TypeErrorKind::MessagedDynamic,
                format!(
                    "cannot invoke `{method}` on a dynamic object of class `{class}`; snapshot it first"
                ),
                span,
            );
        }
        let Some(resolved) = self.table.method(class, rargs, method) else {
            return self.err(
                TypeErrorKind::UnknownMember,
                format!("class `{class}` has no method `{method}`"),
                span,
            );
        };
        // Every send owes the runtime a waterfall re-check: attributed
        // modes and opened existentials are only known dynamically.
        self.oblige(
            ObligationKind::CallSite,
            class.as_str(),
            method.as_str(),
            span,
        );

        // Generic method-mode instantiation: explicit or inferred by
        // matching declared parameter types against argument types.
        // Methods with attributors bind their mode parameters at run time
        // instead (the internal view never appears in the signature).
        let mut msubst = Subst::new();
        if !resolved.mode_params.is_empty() && !resolved.has_attributor {
            if !mode_args.is_empty() {
                if mode_args.len() != resolved.mode_params.len() {
                    return self.err(
                        TypeErrorKind::Arity,
                        format!(
                            "method `{method}` takes {} mode arguments, found {}",
                            resolved.mode_params.len(),
                            mode_args.len()
                        ),
                        span,
                    );
                }
                for (b, m) in resolved.mode_params.iter().zip(mode_args) {
                    self.wf_mode(&ctx.mode_vars.clone(), m, span);
                    msubst.insert(b.var.clone(), m.clone());
                }
            } else {
                // Infer from argument types.
                let method_vars: Vec<ModeVar> =
                    resolved.mode_params.iter().map(|b| b.var.clone()).collect();
                let arg_tys: Vec<Type> = args.iter().map(|a| self.infer(ctx, a)).collect();
                for (pty, aty) in resolved.params.iter().zip(&arg_tys) {
                    unify_modes(pty, aty, &method_vars, &mut msubst);
                }
                for v in &method_vars {
                    if msubst.get(v).is_none() {
                        self.err(
                            TypeErrorKind::BadModeInstantiation,
                            format!("cannot infer method mode parameter `{v}` of `{method}`"),
                            span,
                        );
                        msubst.insert(v.clone(), StaticMode::Bot);
                    }
                }
            }
            // Bounds of the instantiation must be entailed.
            for b in &resolved.mode_params {
                let inst = StaticMode::Var(b.var.clone()).apply(&msubst);
                let lo = b.lo.apply(&msubst);
                let hi = b.hi.apply(&msubst);
                if !ctx.k.entails(self.modes, &lo, &inst) || !ctx.k.entails(self.modes, &inst, &hi)
                {
                    self.err(
                        TypeErrorKind::BadModeInstantiation,
                        format!(
                            "method mode `{inst}` does not satisfy the bound `{lo} ≤ {} ≤ {hi}` of `{method}`",
                            b.var
                        ),
                        span,
                    );
                }
            }
        } else if !mode_args.is_empty() {
            return self.err(
                TypeErrorKind::Arity,
                format!("method `{method}` takes no mode arguments"),
                span,
            );
        }

        // sfall: the receiver-side mode — the method-level override if
        // present, otherwise the receiver object's mode — must be ≤ the
        // sender's mode. Methods with attributors are dynamically moded and
        // checked at run time instead.
        if !resolved.has_attributor {
            let receiver_mode = match resolved.mode.as_ref().map(|m| m.apply(&msubst)) {
                Some(m) => Some(m),
                None => match rargs.omode() {
                    Mode::Static(m) => Some(m.clone()),
                    Mode::Dynamic => {
                        // Receiver is `this` inside a dynamic class: the
                        // internal view is the class's first parameter.
                        self.table
                            .class(class)
                            .and_then(|d| d.mode_params.bounds.first())
                            .map(|b| StaticMode::Var(b.var.clone()))
                    }
                },
            };
            if let Some(m) = receiver_mode {
                if !ctx.k.entails(self.modes, &m, &ctx.sender_mode) {
                    self.err(
                        TypeErrorKind::WaterfallViolation,
                        format!(
                            "receiver mode `{m}` is not known to be at or below sender mode `{}` for call to `{method}`",
                            ctx.sender_mode
                        ),
                        span,
                    );
                }
            }
        }

        if resolved.params.len() != args.len() {
            return self.err(
                TypeErrorKind::Arity,
                format!(
                    "method `{method}` takes {} arguments, found {}",
                    resolved.params.len(),
                    args.len()
                ),
                span,
            );
        }
        for (pty, arg) in resolved.params.iter().zip(args) {
            let pty = pty.apply(&msubst);
            self.check_expr(ctx, arg, &pty);
        }
        resolved.ret.apply(&msubst)
    }

    fn infer_snapshot(
        &mut self,
        ctx: &mut Ctx,
        expr: &Expr,
        lo: &StaticMode,
        hi: &StaticMode,
        span: Span,
    ) -> Type {
        let t = self.infer(ctx, expr);
        let Type::Object { class, args } = &t else {
            if t == Type::Error {
                return Type::Error;
            }
            return self.err(
                TypeErrorKind::BadSnapshot,
                format!("cannot snapshot a value of type `{t}`"),
                span,
            );
        };
        if !args.is_dynamic() {
            return self.err(
                TypeErrorKind::BadSnapshot,
                format!("`{t}` already has a static mode; only dynamic objects are snapshotted"),
                span,
            );
        }
        self.wf_mode(&ctx.mode_vars.clone(), lo, span);
        self.wf_mode(&ctx.mode_vars.clone(), hi, span);
        // The boundary itself is the archetypal obligation: the runtime
        // must attribute a mode and prove it lands in [lo, hi].
        self.oblige(ObligationKind::Boundary, class.as_str(), "snapshot", span);
        // T-Snapshot: ∃(lo ≤ mt ≤ hi). c⟨mt, ι⟩, opened eagerly with a
        // fresh variable.
        let fresh = self.fresh_var();
        ctx.mode_vars.push(fresh.clone());
        ctx.k.push(lo.clone(), StaticMode::Var(fresh.clone()));
        ctx.k.push(StaticMode::Var(fresh.clone()), hi.clone());
        Type::Object {
            class: class.clone(),
            args: ModeArgs::new(Mode::Static(StaticMode::Var(fresh)), args.rest.clone()),
        }
    }

    fn infer_binary(
        &mut self,
        ctx: &mut Ctx,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Type {
        let lt = self.infer(ctx, lhs);
        let lt = self.unwrap_mcase(lt);
        let rt = self.infer(ctx, rhs);
        let rt = self.unwrap_mcase(rt);
        use BinOp::*;
        let num = |t: &Type| matches!(t, Type::Prim(PrimType::Int) | Type::Prim(PrimType::Double));
        match op {
            Add => {
                if lt == Type::STR || rt == Type::STR {
                    // String concatenation accepts any printable operand.
                    return Type::STR;
                }
                if num(&lt) && lt == rt {
                    return lt;
                }
                if lt == Type::Error || rt == Type::Error {
                    return Type::Error;
                }
                self.err(
                    TypeErrorKind::Mismatch,
                    format!("cannot add `{lt}` and `{rt}`"),
                    span,
                )
            }
            Sub | Mul | Div | Rem => {
                if num(&lt) && lt == rt {
                    return lt;
                }
                if lt == Type::Error || rt == Type::Error {
                    return Type::Error;
                }
                self.err(
                    TypeErrorKind::Mismatch,
                    format!("cannot apply `{op}` to `{lt}` and `{rt}`"),
                    span,
                )
            }
            Lt | Le | Gt | Ge => {
                if num(&lt) && lt == rt {
                    return Type::BOOL;
                }
                if lt == Type::Error || rt == Type::Error {
                    return Type::BOOL;
                }
                self.err(
                    TypeErrorKind::Mismatch,
                    format!("cannot compare `{lt}` and `{rt}`"),
                    span,
                );
                Type::BOOL
            }
            Eq | Ne => {
                let comparable = lt == rt && matches!(lt, Type::Prim(_) | Type::ModeValue);
                if !comparable && lt != Type::Error && rt != Type::Error {
                    self.err(
                        TypeErrorKind::Mismatch,
                        format!("cannot test equality of `{lt}` and `{rt}`"),
                        span,
                    );
                }
                Type::BOOL
            }
            And | Or => {
                self.coerce(ctx, &lt, &Type::BOOL, lhs.span);
                self.coerce(ctx, &rt, &Type::BOOL, rhs.span);
                Type::BOOL
            }
        }
    }

    /// Implicit mcase elimination for operand positions.
    fn unwrap_mcase(&self, t: Type) -> Type {
        match t {
            Type::MCase(inner) => *inner,
            other => other,
        }
    }

    fn infer_builtin(
        &mut self,
        ctx: &mut Ctx,
        ns: &Ident,
        name: &Ident,
        args: &[Expr],
        span: Span,
    ) -> Type {
        let arg_tys: Vec<Type> = args
            .iter()
            .map(|a| {
                let t = self.infer(ctx, a);
                self.unwrap_mcase(t)
            })
            .collect();
        let check = |tc: &mut Self, expected: &[Type], ret: Type| -> Type {
            if expected.len() != arg_tys.len() {
                return tc.err(
                    TypeErrorKind::Arity,
                    format!(
                        "builtin `{ns}.{name}` takes {} arguments, found {}",
                        expected.len(),
                        arg_tys.len()
                    ),
                    span,
                );
            }
            for (e, f) in expected.iter().zip(&arg_tys) {
                if f != e && *f != Type::Error {
                    return tc.err(
                        TypeErrorKind::Mismatch,
                        format!("builtin `{ns}.{name}` expected `{e}`, found `{f}`"),
                        span,
                    );
                }
            }
            ret
        };
        match (ns.as_str(), name.as_str()) {
            ("Ext", "battery") => check(self, &[], Type::DOUBLE),
            ("Ext", "temperature") => check(self, &[], Type::DOUBLE),
            ("Ext", "timeMs") => check(self, &[], Type::DOUBLE),
            ("Sim", "work") => check(self, &[Type::STR, Type::DOUBLE], Type::UNIT),
            ("Sim", "sleepMs") => check(self, &[Type::INT], Type::UNIT),
            ("Sim", "rand") => check(self, &[], Type::DOUBLE),
            ("IO", "print") => check(self, &[Type::STR], Type::UNIT),
            ("Str", "len") => check(self, &[Type::STR], Type::INT),
            ("Str", "ofInt") => check(self, &[Type::INT], Type::STR),
            ("Str", "ofDouble") => check(self, &[Type::DOUBLE], Type::STR),
            ("Str", "sub") => check(self, &[Type::STR, Type::INT, Type::INT], Type::STR),
            ("Math", "floor") => check(self, &[Type::DOUBLE], Type::INT),
            ("Math", "toDouble") => check(self, &[Type::INT], Type::DOUBLE),
            ("Math", "min") => check(self, &[Type::INT, Type::INT], Type::INT),
            ("Math", "max") => check(self, &[Type::INT, Type::INT], Type::INT),
            ("Math", "fmin") => check(self, &[Type::DOUBLE, Type::DOUBLE], Type::DOUBLE),
            ("Math", "fmax") => check(self, &[Type::DOUBLE, Type::DOUBLE], Type::DOUBLE),
            ("Math", "abs") => check(self, &[Type::INT], Type::INT),
            ("Math", "sqrt") => check(self, &[Type::DOUBLE], Type::DOUBLE),
            ("Math", "pow") => check(self, &[Type::DOUBLE, Type::DOUBLE], Type::DOUBLE),
            ("Arr", "range") => check(
                self,
                &[Type::INT, Type::INT],
                Type::Array(Box::new(Type::INT)),
            ),
            ("Arr", "len") => match arg_tys.as_slice() {
                [Type::Array(_)] => Type::INT,
                [Type::Error] => Type::INT,
                _ => self.err(
                    TypeErrorKind::Mismatch,
                    "Arr.len takes one array argument",
                    span,
                ),
            },
            ("Arr", "get") => match arg_tys.as_slice() {
                [Type::Array(elem), Type::Prim(PrimType::Int)] => (**elem).clone(),
                [Type::Error, _] => Type::Error,
                _ => self.err(
                    TypeErrorKind::Mismatch,
                    "Arr.get takes an array and an int index",
                    span,
                ),
            },
            ("Arr", "sub") => match arg_tys.as_slice() {
                [Type::Array(_), Type::Prim(PrimType::Int), Type::Prim(PrimType::Int)] => {
                    arg_tys[0].clone()
                }
                _ => self.err(
                    TypeErrorKind::Mismatch,
                    "Arr.sub takes an array and two int bounds",
                    span,
                ),
            },
            ("Arr", "concat") => match arg_tys.as_slice() {
                [Type::Array(a), Type::Array(b)] => {
                    let elem = self.join(ctx, a, b, span);
                    Type::Array(Box::new(elem))
                }
                _ => self.err(TypeErrorKind::Mismatch, "Arr.concat takes two arrays", span),
            },
            ("Arr", "push") => match arg_tys.as_slice() {
                [Type::Array(elem), item] => {
                    let joined = self.join(ctx, elem, item, span);
                    Type::Array(Box::new(joined))
                }
                _ => self.err(
                    TypeErrorKind::Mismatch,
                    "Arr.push takes an array and an element",
                    span,
                ),
            },
            ("Arr", "make") => match arg_tys.as_slice() {
                [Type::Prim(PrimType::Int), elem] => Type::Array(Box::new(elem.clone())),
                _ => self.err(
                    TypeErrorKind::Mismatch,
                    "Arr.make takes a length and an initial element",
                    span,
                ),
            },
            _ => self.err(
                TypeErrorKind::UnknownMember,
                format!("unknown builtin `{ns}.{name}`"),
                span,
            ),
        }
    }
}

/// The internal mode of a class body: its first mode parameter, or `⊥` for
/// neutral classes.
pub(crate) fn internal_mode_of(class: &ClassDecl) -> StaticMode {
    match class.mode_params.bounds.first() {
        Some(b) => StaticMode::Var(b.var.clone()),
        None => StaticMode::Bot,
    }
}

/// The internal (in-body) mode arguments for `this`: the class's own
/// parameters as variables.
pub(crate) fn internal_args_of(class: &ClassDecl) -> ModeArgs {
    let mut params = class.mode_params.params().into_iter();
    let mode = match params.next() {
        Some(v) => Mode::Static(StaticMode::Var(v)),
        None => Mode::Static(StaticMode::Bot),
    };
    ModeArgs::new(mode, params.map(StaticMode::Var).collect())
}

fn internal_this_type(class: &ClassDecl) -> Type {
    Type::Object {
        class: class.name.clone(),
        args: internal_args_of(class),
    }
}

fn type_eq(table: &ClassTable, modes: &ModeTable, k: &ConstraintSet, a: &Type, b: &Type) -> bool {
    is_subtype(table, modes, k, a, b) && is_subtype(table, modes, k, b, a)
}

fn type_mentions_var(ty: &Type, var: &ModeVar) -> bool {
    match ty {
        Type::Object { args, .. } => {
            let mut vars = Vec::new();
            args.collect_vars(&mut vars);
            vars.contains(var)
        }
        Type::MCase(t) | Type::Array(t) => type_mentions_var(t, var),
        Type::Exists { inner, .. } => type_mentions_var(inner, var),
        Type::Prim(_) | Type::ModeValue | Type::Error => false,
    }
}

/// First-order unification of mode variables: walks `pattern` and `actual`
/// in parallel, binding any `Var(v)` with `v ∈ vars` to the corresponding
/// mode of `actual` (first binding wins, Java-generics style).
fn unify_modes(pattern: &Type, actual: &Type, vars: &[ModeVar], out: &mut Subst) {
    match (pattern, actual) {
        (Type::Object { args: pa, .. }, Type::Object { args: aa, .. }) => {
            if let (Mode::Static(pm), Mode::Static(am)) = (&pa.mode, &aa.mode) {
                bind_mode(pm, am, vars, out);
            }
            for (p, a) in pa.rest.iter().zip(&aa.rest) {
                bind_mode(p, a, vars, out);
            }
        }
        (Type::MCase(p), Type::MCase(a)) => unify_modes(p, a, vars, out),
        (Type::Array(p), Type::Array(a)) => unify_modes(p, a, vars, out),
        _ => {}
    }
}

fn bind_mode(pattern: &StaticMode, actual: &StaticMode, vars: &[ModeVar], out: &mut Subst) {
    if let StaticMode::Var(v) = pattern {
        if vars.contains(v) && out.get(v).is_none() {
            out.insert(v.clone(), actual.clone());
        }
    }
}
