//! Edge cases and corner behaviors of the mixed type system, beyond the
//! paper-listing scenarios in `typeck_scenarios.rs`.

use ent_core::{compile, CompileError, TypeErrorKind};

fn kinds(src: &str) -> Vec<TypeErrorKind> {
    match compile(src) {
        Ok(_) => Vec::new(),
        Err(CompileError::Type(errors)) => errors.iter().map(|e| e.kind).collect(),
        Err(other) => panic!("expected type errors or success, got: {other}"),
    }
}

fn assert_ok(src: &str) {
    if let Err(e) = compile(src) {
        panic!("expected the program to typecheck, got:\n{}", e.render(src));
    }
}

fn assert_kind(src: &str, kind: TypeErrorKind) {
    let found = kinds(src);
    assert!(found.contains(&kind), "expected {kind:?}, found {found:?}");
}

const MODES: &str = "modes { energy_saver <= managed; managed <= full_throttle; }\n";

#[test]
fn local_shadowing_uses_the_innermost_binding() {
    assert_ok(
        "class Main {
           int main() {
             let x = 1;
             let y = {
               let x = \"shadow\";
               Str.len(x)
             };
             return x + y;
           }
         }",
    );
}

#[test]
fn a_typo_in_a_mode_name_is_an_unscoped_variable_error() {
    // `managd` parses as a mode *variable* (not a declared constant), and
    // no such variable is in scope.
    let src = format!(
        "{MODES}
        class S@mode<X> {{ }}
        class Main {{
          unit main() {{
            let s = new S@mode<managd>();
            return {{}};
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadModeInstantiation);
}

#[test]
fn classes_with_multiple_mode_parameters() {
    let src = format!(
        "{MODES}
        class Channel@mode<X, Y> {{
          Producer@mode<Y> producer;
          Producer@mode<Y> get() {{ return this.producer; }}
        }}
        class Producer@mode<P> {{ }}
        class Main {{
          unit main() {{
            let c = new Channel@mode<full_throttle, energy_saver>(
              new Producer@mode<energy_saver>());
            let p = c.get();
            return {{}};
          }}
        }}"
    );
    assert_ok(&src);

    // Wrong arity is caught.
    let bad = format!(
        "{MODES}
        class Channel@mode<X, Y> {{ }}
        class Main {{
          unit main() {{
            let c = new Channel@mode<managed>();
            return {{}};
          }}
        }}"
    );
    assert_kind(&bad, TypeErrorKind::BadModeInstantiation);
}

#[test]
fn arrays_of_moded_objects_are_covariant() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class DepthRule@mode<X> extends Rule@mode<X> {{ }}
        class Main {{
          unit main() {{
            let Rule@mode<managed>[] rules =
              [new DepthRule@mode<managed>(), new Rule@mode<managed>()];
            let first = Arr.get(rules, 0);
            return {{}};
          }}
        }}"
    );
    assert_ok(&src);

    // But modes stay invariant inside the element type.
    let bad = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class Main {{
          unit main() {{
            let Rule@mode<managed>[] rules = [new Rule@mode<full_throttle>()];
            return {{}};
          }}
        }}"
    );
    assert_kind(&bad, TypeErrorKind::Mismatch);
}

#[test]
fn mcase_of_objects_and_nested_mcase_types() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class C@mode<X> {{
          mcase<Rule@mode<X>> pick = mcase{{
            energy_saver: new Rule@mode<X>();
            managed: new Rule@mode<X>();
            full_throttle: new Rule@mode<X>();
          }};
          Rule@mode<X> choose() {{ return this.pick <| X; }}
        }}"
    );
    assert_ok(&src);
}

#[test]
fn snapshot_of_a_snapshot_result_is_rejected() {
    let src = format!(
        "{MODES}
        class D@mode<? <= X> {{ attributor {{ return managed; }} }}
        class Main {{
          unit main() {{
            let d = new D();
            let D s = snapshot d [_, _];
            let D t = snapshot s [_, _];
            return {{}};
          }}
        }}"
    );
    // The first snapshot's result has a static (existential) mode; the
    // second snapshot therefore fails T-Snapshot.
    assert_kind(&src, TypeErrorKind::BadSnapshot);
}

#[test]
fn method_mode_parameter_shadowing_class_parameter_is_rejected() {
    let src = format!(
        "{MODES}
        class C@mode<X> {{
          int f<X>(int n) {{ return n; }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadDeclaration);
}

#[test]
fn three_level_waterfall_chain() {
    // high → mid → low is fine; a low link calling upward is not.
    let ok = format!(
        "{MODES}
        class Low@mode<L> {{ int go() {{ return 1; }} }}
        class Mid@mode<energy_saver <= M <= full_throttle> {{
          Low@mode<energy_saver> low;
          int go() {{ return this.low.go(); }}
        }}
        class High@mode<full_throttle> {{
          Mid@mode<managed> mid;
          int go() {{ return this.mid.go(); }}
        }}"
    );
    assert_ok(&ok);

    let bad = format!(
        "{MODES}
        class Low@mode<L> {{
          High@mode<full_throttle> up;
          int go() {{ return this.up.go(); }}
        }}
        class High@mode<full_throttle> {{ int go() {{ return 2; }} }}"
    );
    assert_kind(&bad, TypeErrorKind::WaterfallViolation);
}

#[test]
fn dynamic_class_with_bounded_internal_parameter() {
    let src = format!(
        "{MODES}
        class D@mode<? <= X <= managed> {{
          attributor {{ return energy_saver; }}
          int f() {{ return 1; }}
        }}
        class Booter@mode<managed> {{
          int go() {{
            let d = new D();
            // The internal upper bound makes this snapshot statically safe
            // to message from a managed context.
            let D s = snapshot d [_, managed];
            return s.f();
          }}
        }}"
    );
    assert_ok(&src);
}

#[test]
fn calls_on_this_inside_a_dynamic_class_use_the_internal_view() {
    let src = format!(
        "{MODES}
        class D@mode<? <= X> {{
          attributor {{ return managed; }}
          int outer() {{ return this.inner() + 1; }}
          int inner() {{ return 1; }}
        }}
        class Main {{
          int main() {{
            let d = new D();
            let D s = snapshot d [_, _];
            return s.outer();
          }}
        }}"
    );
    assert_ok(&src);
}

#[test]
fn trailing_expression_is_the_block_value() {
    assert_ok(
        "class Main {
           int main() {
             let v = { 1; 2; 3 };
             return v;
           }
         }",
    );
}

#[test]
fn return_type_checking_through_all_paths() {
    let src = "class Main {
        int main() {
          if (true) { return 1; }
          return \"two\";
        }
      }";
    assert_kind(src, TypeErrorKind::Mismatch);
}

#[test]
fn generic_method_call_on_moded_receiver_checks_waterfall() {
    // The generic method's *receiver* still obeys the waterfall even when
    // the method itself has mode parameters.
    let src = format!(
        "{MODES}
        class Factory@mode<full_throttle> {{
          Rule@mode<s> make<s>() {{ return new Rule@mode<s>(); }}
        }}
        class Rule@mode<R> {{ }}
        class Booter@mode<energy_saver> {{
          unit go() {{
            let f = new Factory();
            let r = f.make@mode<energy_saver>();
            return {{}};
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::WaterfallViolation);
}

#[test]
fn mode_arguments_resolve_through_generic_contexts() {
    // X flows from the instantiating context into a nested generic use.
    let src = format!(
        "{MODES}
        class Inner@mode<I> {{ }}
        class Outer@mode<X> {{
          Inner@mode<X> make() {{ return new Inner@mode<X>(); }}
        }}
        class Main {{
          unit main() {{
            let o = new Outer@mode<managed>();
            let Inner@mode<managed> i = o.make();
            return {{}};
          }}
        }}"
    );
    assert_ok(&src);

    // ...and the result's mode is precise, not forgettable:
    let bad = format!(
        "{MODES}
        class Inner@mode<I> {{ }}
        class Outer@mode<X> {{
          Inner@mode<X> make() {{ return new Inner@mode<X>(); }}
        }}
        class Main {{
          unit main() {{
            let o = new Outer@mode<managed>();
            let Inner@mode<full_throttle> i = o.make();
            return {{}};
          }}
        }}"
    );
    assert_kind(&bad, TypeErrorKind::Mismatch);
}

#[test]
fn unit_returning_method_accepts_empty_block() {
    assert_ok("class C { unit nop() { return {}; } unit nop2() { } }");
}

#[test]
fn attributor_can_inspect_own_fields_of_dynamic_this() {
    let src = format!(
        "{MODES}
        class D@mode<? <= X> {{
          int size;
          attributor {{
            if (this.size > 10) {{ return full_throttle; }}
            else {{ return energy_saver; }}
          }}
        }}
        class Main {{
          unit main() {{
            let d = new D(50);
            let D s = snapshot d [_, _];
            return {{}};
          }}
        }}"
    );
    assert_ok(&src);
}

#[test]
fn string_concatenation_accepts_mixed_operands() {
    assert_ok(
        "class Main {
           string main() {
             return \"n=\" + Str.ofInt(3) + \"; b=\" + Str.ofDouble(2.5);
           }
         }",
    );
}

#[test]
fn division_type_rules() {
    assert_ok("class Main { int main() { return 7 / 2 % 3; } }");
    assert_kind(
        "class Main { double main() { return 7 / 2.0; } }",
        TypeErrorKind::Mismatch,
    );
}

#[test]
fn new_infers_mode_arguments_from_the_expected_type() {
    let src = format!(
        "{MODES}
        class Site@mode<S> {{ int n; }}
        class Main {{
          unit main() {{
            let Site@mode<managed> s = new Site(10);
            return {{}};
          }}
        }}"
    );
    assert_ok(&src);

    // Without an expected instantiation it is still an error.
    let bad = format!(
        "{MODES}
        class Site@mode<S> {{ int n; }}
        class Main {{
          unit main() {{
            let s = new Site(10);
            return {{}};
          }}
        }}"
    );
    assert_kind(&bad, TypeErrorKind::BadModeInstantiation);
}

#[test]
fn new_inference_checks_the_inferred_bounds() {
    let src = format!(
        "{MODES}
        class Bounded@mode<managed <= B <= full_throttle> {{ }}
        class Main {{
          unit main() {{
            let Bounded@mode<energy_saver> b = new Bounded();
            return {{}};
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadModeInstantiation);
}

#[test]
fn multiple_errors_are_all_reported() {
    let src = format!(
        "{MODES}
        class Heavy@mode<full_throttle> {{ int run() {{ return 1; }} }}
        class Booter@mode<energy_saver> {{
          int a() {{ let h = new Heavy(); return h.run(); }}   // waterfall
          int b() {{ return \"no\"; }}                          // mismatch
          int c() {{ return this.nope(); }}                     // unknown member
        }}"
    );
    let found = kinds(&src);
    assert!(
        found.contains(&TypeErrorKind::WaterfallViolation),
        "{found:?}"
    );
    assert!(found.contains(&TypeErrorKind::Mismatch), "{found:?}");
    assert!(found.contains(&TypeErrorKind::UnknownMember), "{found:?}");
    assert!(found.len() >= 3);
}

#[test]
fn diamond_lattice_programs_work_end_to_end() {
    // A non-linear lattice: io and cpu are incomparable siblings between
    // idle and busy. Waterfall checks follow the partial order.
    let src = "modes { idle <= io; idle <= cpu; io <= busy; cpu <= busy; }
        class IoWorker@mode<W> { int run() { return 1; } }
        class Boss@mode<busy> {
          int go() {
            let w = new IoWorker@mode<io>();
            return w.run();
          }
        }
        class CpuBoss@mode<cpu> {
          IoWorker@mode<io> w;
          // io and cpu are incomparable: calling across is a violation.
          int bad() { return this.w.run(); }
        }";
    let found = kinds(src);
    // Exactly one violation: CpuBoss.bad (Boss.go is fine, busy ≥ io).
    assert_eq!(
        found,
        vec![TypeErrorKind::WaterfallViolation],
        "only the cross-sibling call violates"
    );
}

#[test]
fn method_attributor_with_named_internal_view() {
    // Listing 3's saveImages: the method's own mode is decided at run
    // time; the named view X is usable inside the body.
    let src = format!(
        "{MODES}
        class JPEGWriter@mode<W> {{
          mcase<int> quality = mcase{{ energy_saver: 30; managed: 60; full_throttle: 95; }};
          int write() {{ return this.quality <| W; }}
        }}
        class Saver@mode<V> {{
          int parsedimgs;
          int saveImages<X>()
            attributor {{
              if (this.parsedimgs > 20) {{ return full_throttle; }}
              else if (this.parsedimgs > 10) {{ return managed; }}
              else {{ return energy_saver; }}
            }}
          {{
            let writer = new JPEGWriter@mode<X>();
            return writer.write();
          }}
        }}
        class Main {{
          int main() {{
            let s = new Saver@mode<full_throttle>(25);
            return s.saveImages();
          }}
        }}"
    );
    assert_ok(&src);
}

#[test]
fn method_attributor_view_must_not_leak_into_the_signature() {
    let src = format!(
        "{MODES}
        class W@mode<M> {{ }}
        class Saver@mode<V> {{
          int n;
          W@mode<X> make<X>()
            attributor {{ return managed; }}
          {{ return new W@mode<X>(); }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadDeclaration);
}
