//! Typechecker scenarios mirroring the paper's listings and discussion.

use ent_core::{compile, CompileError, TypeErrorKind};

fn kinds(src: &str) -> Vec<TypeErrorKind> {
    match compile(src) {
        Ok(_) => Vec::new(),
        Err(CompileError::Type(errors)) => errors.iter().map(|e| e.kind).collect(),
        Err(other) => panic!("expected type errors or success, got: {other}"),
    }
}

fn assert_ok(src: &str) {
    if let Err(e) = compile(src) {
        panic!("expected the program to typecheck, got:\n{}", e.render(src));
    }
}

fn assert_kind(src: &str, kind: TypeErrorKind) {
    let found = kinds(src);
    assert!(
        found.contains(&kind),
        "expected a {kind:?} error, found {found:?}"
    );
}

const MODES: &str = "modes { energy_saver <= managed; managed <= full_throttle; }\n";

/// The paper's Listing 1, adapted to the reproduction's concrete syntax:
/// a dynamic Agent with an attributor, a dynamic Site, bounded snapshots,
/// and a depth mode case.
#[test]
fn listing1_web_crawler_typechecks() {
    let src = format!(
        "{MODES}
        class Site@mode<? <= S> {{
          int resources;
          attributor {{
            if (this.resources > 200) {{ return full_throttle; }}
            else if (this.resources > 50) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          int crawl(int depth) {{ return this.resources * depth; }}
        }}
        class Agent@mode<? <= X> {{
          mcase<int> depth = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
          attributor {{
            if (Ext.battery() >= 0.75) {{ return full_throttle; }}
            else if (Ext.battery() >= 0.50) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          int work(int resources) {{
            let ds = new Site(resources);
            let Site s = snapshot ds [_, X];
            return s.crawl(this.depth <| X);
          }}
        }}
        class Main {{
          int main() {{
            let da = new Agent();
            let Agent a = snapshot da [_, _];
            return a.work(100);
          }}
        }}"
    );
    assert_ok(&src);
}

/// Forgetting the `[_, X]` bound on the inner snapshot makes the crawl call
/// unprovable: the snapshot's fresh mode is unbounded above, so it is not
/// known to sit below the Agent's mode X. This is exactly the debugging
/// scenario of §6.3.
#[test]
fn missing_snapshot_bound_is_a_waterfall_violation() {
    let src = format!(
        "{MODES}
        class Site@mode<? <= S> {{
          int resources;
          attributor {{ return managed; }}
          int crawl(int depth) {{ return this.resources * depth; }}
        }}
        class Agent@mode<? <= X> {{
          attributor {{ return managed; }}
          int work(int resources) {{
            let ds = new Site(resources);
            let Site s = snapshot ds [_, _];
            return s.crawl(2);
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::WaterfallViolation);
}

/// Listing 3: `mediaCrawl` is annotated `@mode<full_throttle>`, so calling
/// it from a generically-moded Agent is a compile-time error.
#[test]
fn method_mode_override_enforces_waterfall() {
    let src = format!(
        "{MODES}
        class Site@mode<S> {{
          int resources;
          int crawl(int depth) {{ return this.resources * depth; }}
          @mode<full_throttle> int mediaCrawl() {{ return this.resources * 10; }}
        }}
        class Agent@mode<X> {{
          int work() {{
            let s = new Site@mode<X>(10);
            return s.mediaCrawl();
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::WaterfallViolation);
}

/// But booting from full_throttle makes the same call fine.
#[test]
fn method_mode_override_allows_full_throttle_sender() {
    let src = format!(
        "{MODES}
        class Site@mode<S> {{
          int resources;
          @mode<full_throttle> int mediaCrawl() {{ return this.resources * 10; }}
        }}
        class Agent@mode<full_throttle> {{
          int work() {{
            let s = new Site@mode<full_throttle>(10);
            return s.mediaCrawl();
          }}
        }}"
    );
    assert_ok(&src);
}

/// Messaging a dynamic object directly is rejected (T-Msg forbids `?` on
/// the receiver).
#[test]
fn messaging_dynamic_object_is_rejected() {
    let src = format!(
        "{MODES}
        class Agent@mode<?> {{
          attributor {{ return managed; }}
          int work() {{ return 1; }}
        }}
        class Main {{
          int main() {{
            let da = new Agent();
            return da.work();
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::MessagedDynamic);
}

/// Reading fields of a dynamic object (other than `this`) is rejected too.
#[test]
fn reading_fields_of_dynamic_object_is_rejected() {
    let src = format!(
        "{MODES}
        class Agent@mode<?> {{
          int cached;
          attributor {{ return managed; }}
        }}
        class Main {{
          int main() {{
            let da = new Agent(5);
            return da.cached;
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::MessagedDynamic);
}

/// Static waterfall between concrete modes: an energy_saver boot cannot
/// call a full_throttle-moded object.
#[test]
fn concrete_waterfall_violation() {
    let src = format!(
        "{MODES}
        class Heavy@mode<H> {{ int run() {{ return 1; }} }}
        class Booter@mode<energy_saver> {{
          int go() {{
            let h = new Heavy@mode<full_throttle>();
            return h.run();
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::WaterfallViolation);
}

/// The opposite direction obeys the waterfall: full_throttle may call
/// energy_saver.
#[test]
fn downward_calls_are_allowed() {
    let src = format!(
        "{MODES}
        class Light@mode<L> {{ int run() {{ return 1; }} }}
        class Booter@mode<full_throttle> {{
          int go() {{
            let l = new Light@mode<energy_saver>();
            return l.run();
          }}
        }}"
    );
    assert_ok(&src);
}

/// Listing 2's co-adaptation: a dynamic Agent instantiates Site and Rules
/// at its internal generic mode X, so all parties share one mode.
#[test]
fn listing2_co_adaptation_typechecks() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class DepthRule@mode<X> extends Rule@mode<X> {{
          mcase<int> depth = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
        }}
        class MaxResourcesRule@mode<X> extends Rule@mode<X> {{
          mcase<int> maxresources = mcase{{ energy_saver: 50; managed: 100; full_throttle: 200; }};
        }}
        class Site@mode<S> {{
          int resources;
          int crawl(Rule@mode<S> r1, Rule@mode<S> r2) {{ return this.resources; }}
        }}
        class Agent@mode<? <= X> {{
          attributor {{
            if (Ext.battery() >= 0.75) {{ return full_throttle; }}
            else if (Ext.battery() >= 0.50) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          int work(int n) {{
            let s = new Site@mode<X>(n);
            return s.crawl(new DepthRule@mode<X>(), new MaxResourcesRule@mode<X>());
          }}
        }}"
    );
    assert_ok(&src);
}

/// Generic method modes with call-site inference (Listing 3's
/// `generateRules`).
#[test]
fn generic_method_mode_inference() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class Site@mode<S> {{
          int resources;
          int crawl(Rule@mode<S> r) {{ return this.resources; }}
        }}
        class Agent@mode<X> {{
          Rule@mode<s> generateRules<s>(Site@mode<s> site) {{
            return new Rule@mode<s>();
          }}
          int work() {{
            let site = new Site@mode<X>(10);
            let r = this.generateRules(site);
            return site.crawl(r);
          }}
        }}"
    );
    assert_ok(&src);
}

/// Explicit method-mode arguments are also accepted.
#[test]
fn explicit_method_mode_arguments() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class Factory@mode<F> {{
          Rule@mode<s> make<s>() {{ return new Rule@mode<s>(); }}
        }}
        class Main {{
          unit main() {{
            let f = new Factory@mode<managed>();
            let r = f.make@mode<energy_saver>();
            return {{}};
          }}
        }}"
    );
    assert_ok(&src);
}

/// Uninferable method modes are reported.
#[test]
fn uninferable_method_mode_is_an_error() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class Factory@mode<F> {{
          Rule@mode<s> make<s>() {{ return new Rule@mode<s>(); }}
        }}
        class Main {{
          unit main() {{
            let f = new Factory@mode<managed>();
            let r = f.make();
            return {{}};
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadModeInstantiation);
}

/// A mode case must cover every declared mode (T-MCase).
#[test]
fn incomplete_mode_case_is_rejected() {
    let src = format!(
        "{MODES}
        class C@mode<X> {{
          mcase<int> depth = mcase{{ energy_saver: 1; managed: 2; }};
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadModeCase);
}

/// Duplicate arms are rejected.
#[test]
fn duplicate_mode_case_arm_is_rejected() {
    let src = format!(
        "{MODES}
        class C@mode<X> {{
          mcase<int> depth =
            mcase{{ energy_saver: 1; energy_saver: 9; managed: 2; full_throttle: 3; }};
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadModeCase);
}

/// Implicit elimination `<| _` needs an enclosing mode-carrying class.
#[test]
fn implicit_elim_in_neutral_class_is_rejected() {
    let src = format!(
        "{MODES}
        class C {{
          mcase<int> depth = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
          int get() {{ return this.depth <| _; }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadModeCase);
}

/// Snapshot of a statically-moded object is rejected.
#[test]
fn snapshot_of_static_object_is_rejected() {
    let src = format!(
        "{MODES}
        class S@mode<X> {{ }}
        class Main {{
          unit main() {{
            let s = new S@mode<managed>();
            let t = snapshot s [_, _];
            return {{}};
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadSnapshot);
}

/// Instantiating a dynamic class with a concrete mode is rejected (T-New's
/// dynamicness agreement).
#[test]
fn dynamic_class_needs_dynamic_instantiation() {
    let src = format!(
        "{MODES}
        class D@mode<?> {{ attributor {{ return managed; }} }}
        class Main {{
          unit main() {{
            let d = new D@mode<managed>();
            return {{}};
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadModeInstantiation);
}

/// And vice versa: a static class cannot be instantiated with `?`.
#[test]
fn static_class_rejects_dynamic_instantiation() {
    let src = format!(
        "{MODES}
        class S@mode<X> {{ }}
        class Main {{
          unit main() {{
            let s = new S@mode<?>();
            return {{}};
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadModeInstantiation);
}

/// Mode bounds on generic classes are enforced at instantiation.
#[test]
fn bounded_generic_instantiation() {
    let ok = format!(
        "{MODES}
        class Bounded@mode<energy_saver <= X <= managed> {{ }}
        class Main {{
          unit main() {{
            let b = new Bounded@mode<managed>();
            return {{}};
          }}
        }}"
    );
    assert_ok(&ok);

    let bad = format!(
        "{MODES}
        class Bounded@mode<energy_saver <= X <= managed> {{ }}
        class Main {{
          unit main() {{
            let b = new Bounded@mode<full_throttle>();
            return {{}};
          }}
        }}"
    );
    assert_kind(&bad, TypeErrorKind::BadModeInstantiation);
}

/// A pinned-mode class may be referenced bare; the mode is normalized.
#[test]
fn pinned_class_reference_normalizes() {
    let src = format!(
        "{MODES}
        class Writer@mode<full_throttle> {{ int write() {{ return 1; }} }}
        class Main {{
          int main() {{
            let w = new Writer();
            return w.write();
          }}
        }}"
    );
    assert_ok(&src);
}

/// Method-level attributors make the method dynamically moded: calls are
/// not statically waterfall-checked.
#[test]
fn method_level_attributor_permits_dynamic_calls() {
    let src = format!(
        "{MODES}
        class Saver@mode<S> {{
          int parsedimgs;
          int saveImages(int n)
            attributor {{
              if (this.parsedimgs > 20) {{ return full_throttle; }}
              else if (this.parsedimgs > 10) {{ return managed; }}
              else {{ return energy_saver; }}
            }}
          {{ return n * this.parsedimgs; }}
        }}
        class Booter@mode<energy_saver> {{
          int go() {{
            let s = new Saver@mode<energy_saver>(30);
            return s.saveImages(2);
          }}
        }}"
    );
    assert_ok(&src);
}

/// Casts between unrelated classes are statically rejected.
#[test]
fn unrelated_cast_is_rejected() {
    let src = format!(
        "{MODES}
        class A@mode<X> {{ }}
        class B@mode<Y> {{ }}
        class Main {{
          unit main() {{
            let a = new A@mode<managed>();
            let b = (B@mode<managed>)a;
            return {{}};
          }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::BadCast);
}

/// Downcasts are allowed statically (checked at run time).
#[test]
fn downcast_is_allowed() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class DepthRule@mode<X> extends Rule@mode<X> {{ }}
        class Main {{
          unit main() {{
            let Rule@mode<managed> r = new DepthRule@mode<managed>();
            let d = (DepthRule@mode<managed>)r;
            return {{}};
          }}
        }}"
    );
    assert_ok(&src);
}

/// Overrides must preserve the signature including the method-level mode.
#[test]
fn incompatible_override_is_rejected() {
    let src = format!(
        "{MODES}
        class A@mode<X> {{ int f(int n) {{ return n; }} }}
        class B@mode<Y> extends A@mode<Y> {{ string f(int n) {{ return \"no\"; }} }}"
    );
    assert_kind(&src, TypeErrorKind::BadDeclaration);
}

/// mcase values flow implicitly into primitive positions (auto-elim).
#[test]
fn mcase_auto_elimination_in_operands() {
    let src = format!(
        "{MODES}
        class C@mode<X> {{
          mcase<int> depth = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
          int doubled() {{ return this.depth * 2; }}
          int viaArg() {{ return this.take(this.depth); }}
          int take(int d) {{ return d; }}
        }}"
    );
    assert_ok(&src);
}

/// Mode constants are first-class only as attributor results: an attributor
/// returning a non-mode is rejected.
#[test]
fn attributor_must_return_a_mode() {
    let src = format!(
        "{MODES}
        class D@mode<?> {{
          attributor {{ return 42; }}
        }}"
    );
    assert_kind(&src, TypeErrorKind::Mismatch);
}

/// Unknown classes, members, variables.
#[test]
fn unknown_references_are_reported() {
    assert_kind(
        "class Main { unit main() { let x = new Ghost(); return {}; } }",
        TypeErrorKind::UnknownClass,
    );
    assert_kind(
        "class A { } class Main { int main() { let a = new A(); return a.nope(); } }",
        TypeErrorKind::UnknownMember,
    );
    assert_kind(
        "class Main { int main() { return nope; } }",
        TypeErrorKind::UnknownMember,
    );
}

/// Arity errors for constructors and methods.
#[test]
fn arity_errors() {
    assert_kind(
        "class A { int x; } class Main { unit main() { let a = new A(); return {}; } }",
        TypeErrorKind::Arity,
    );
    assert_kind(
        "class A { int f(int n) { return n; } }
         class Main { int main() { let a = new A(); return a.f(); } }",
        TypeErrorKind::Arity,
    );
}

/// Branch type joining through subtyping.
#[test]
fn if_branches_join_through_subtyping() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class DepthRule@mode<X> extends Rule@mode<X> {{ }}
        class MaxRule@mode<Y> extends Rule@mode<Y> {{ }}
        class Main {{
          unit main() {{
            let Rule@mode<managed> r = if (true) {{ new DepthRule@mode<managed>() }}
                                       else {{ new Rule@mode<managed>() }};
            return {{}};
          }}
        }}"
    );
    assert_ok(&src);

    let bad = format!(
        "{MODES}
        class Main {{
          unit main() {{
            let x = if (true) {{ 1 }} else {{ \"two\" }};
            return {{}};
          }}
        }}"
    );
    assert_kind(&bad, TypeErrorKind::Mismatch);
}

/// Builtin signatures are enforced.
#[test]
fn builtin_signature_errors() {
    assert_kind(
        "class Main { unit main() { Sim.work(3, 4.0); return {}; } }",
        TypeErrorKind::Mismatch,
    );
    assert_kind(
        "class Main { unit main() { Ext.battery(1.0); return {}; } }",
        TypeErrorKind::Arity,
    );
    assert_kind(
        "class Main { unit main() { Sim.unknownOp(); return {}; } }",
        TypeErrorKind::UnknownMember,
    );
}

/// Arrays: literals check against annotations; Arr builtins are generic.
#[test]
fn arrays_and_builtins() {
    assert_ok(
        "class Main {
           int main() {
             let int[] xs = [1, 2, 3];
             let ys = Arr.push(xs, 4);
             let int[] zs = Arr.sub(ys, 0, 2);
             return Arr.get(zs, 0) + Arr.len(ys);
           }
         }",
    );
    assert_kind(
        "class Main { unit main() { let int[] xs = [1, \"two\"]; return {}; } }",
        TypeErrorKind::Mismatch,
    );
    assert_kind(
        "class Main { unit main() { let xs = []; return {}; } }",
        TypeErrorKind::Mismatch,
    );
}

/// Snapshot bounds participate in the waterfall: a snapshot bounded above
/// by `managed` may be messaged from a `managed` sender.
#[test]
fn bounded_snapshot_enables_static_call() {
    let src = format!(
        "{MODES}
        class Worker@mode<? <= W> {{
          attributor {{ return energy_saver; }}
          int run() {{ return 1; }}
        }}
        class Boss@mode<managed> {{
          int go() {{
            let dw = new Worker();
            let Worker w = snapshot dw [_, managed];
            return w.run();
          }}
        }}"
    );
    assert_ok(&src);
}

/// try/catch joins its branch types like if.
#[test]
fn try_catch_typing() {
    let src = format!(
        "{MODES}
        class Worker@mode<? <= W> {{
          attributor {{ return full_throttle; }}
          int run() {{ return 10; }}
        }}
        class Main {{
          int main() {{
            let dw = new Worker();
            return try {{
              let Worker w = snapshot dw [_, managed];
              w.run()
            }} catch {{ 0 }};
          }}
        }}"
    );
    assert_ok(&src);
}
