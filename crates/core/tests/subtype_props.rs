//! Property tests for the subtyping judgment: preorder laws, invariant
//! modes, covariant mcases/arrays, over randomly generated class
//! hierarchies.

use ent_core::is_subtype;
use ent_modes::{ConstraintSet, Mode, ModeArgs, ModeName, StaticMode};
use ent_syntax::{parse_program, ClassTable, Type};
use proptest::prelude::*;

/// Builds a random single-parent class chain `C0 <: C1 <: … <: Object`,
/// every class generic in one mode.
fn hierarchy(depth: usize) -> (ClassTable, ent_modes::ModeTable) {
    let mut src = String::from("modes { low <= mid; mid <= high; }\n");
    for i in 0..depth {
        if i + 1 < depth {
            src.push_str(&format!(
                "class C{i}@mode<X{i}> extends C{}@mode<X{i}> {{ }}\n",
                i + 1
            ));
        } else {
            src.push_str(&format!("class C{i}@mode<X{i}> {{ }}\n"));
        }
    }
    let program = parse_program(&src).expect("hierarchy parses");
    let table = ClassTable::new(&program).expect("hierarchy validates");
    (table, program.mode_table)
}

fn obj(i: usize, mode: &str) -> Type {
    Type::object(
        format!("C{i}").as_str(),
        ModeArgs::new(Mode::Static(StaticMode::Const(ModeName::new(mode))), vec![]),
    )
}

const MODES: [&str; 3] = ["low", "mid", "high"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Subtyping is reflexive and transitive over the chain.
    #[test]
    fn subtyping_is_a_preorder(depth in 2usize..6, m in 0usize..3) {
        let (table, modes) = hierarchy(depth);
        let k = ConstraintSet::new();
        let mode = MODES[m];
        for i in 0..depth {
            let ti = obj(i, mode);
            prop_assert!(is_subtype(&table, &modes, &k, &ti, &ti));
            for j in i..depth {
                let tj = obj(j, mode);
                prop_assert!(is_subtype(&table, &modes, &k, &ti, &tj), "C{i} <: C{j}");
                if i != j {
                    prop_assert!(!is_subtype(&table, &modes, &k, &tj, &ti), "C{j} </: C{i}");
                }
            }
        }
    }

    /// Modes are invariant: differing modes break subtyping regardless of
    /// the class relationship.
    #[test]
    fn modes_are_invariant(depth in 2usize..6, a in 0usize..3, b in 0usize..3) {
        prop_assume!(a != b);
        let (table, modes) = hierarchy(depth);
        let k = ConstraintSet::new();
        let sub = obj(0, MODES[a]);
        let sup = obj(depth - 1, MODES[b]);
        prop_assert!(!is_subtype(&table, &modes, &k, &sub, &sup));
    }

    /// mcase and array constructors preserve subtyping (covariance), and
    /// nesting them composes.
    #[test]
    fn constructors_are_covariant_and_compose(depth in 2usize..5, m in 0usize..3) {
        let (table, modes) = hierarchy(depth);
        let k = ConstraintSet::new();
        let sub = obj(0, MODES[m]);
        let sup = obj(depth - 1, MODES[m]);
        let wrap = |t: Type, i: usize| -> Type {
            match i % 2 {
                0 => Type::MCase(Box::new(t)),
                _ => Type::Array(Box::new(t)),
            }
        };
        let mut s1 = sub;
        let mut s2 = sup;
        for i in 0..3 {
            s1 = wrap(s1, i);
            s2 = wrap(s2, i);
            prop_assert!(is_subtype(&table, &modes, &k, &s1, &s2));
            prop_assert!(!is_subtype(&table, &modes, &k, &s2, &s1));
        }
    }

    /// Everything is a subtype of Object; Object only of itself.
    #[test]
    fn object_is_top(depth in 2usize..6, i in 0usize..6, m in 0usize..3) {
        let (table, modes) = hierarchy(depth);
        let k = ConstraintSet::new();
        let i = i % depth;
        let t = obj(i, MODES[m]);
        let object = Type::object("Object", ModeArgs::of_static(StaticMode::Bot));
        prop_assert!(is_subtype(&table, &modes, &k, &t, &object));
        prop_assert!(!is_subtype(&table, &modes, &k, &object, &t));
    }
}
