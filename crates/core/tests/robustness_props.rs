//! Robustness fuzzing: the pipeline must never panic, whatever bytes it is
//! fed — malformed programs produce diagnostics, not crashes.

use ent_core::compile;
use ent_syntax::{lex, parse_program};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the lexer.
    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lex(&input);
    }

    /// Arbitrary strings never panic the parser.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_program(&input);
    }

    /// Token-soup built from the language's own vocabulary never panics
    /// the full pipeline (these inputs get much deeper into the parser and
    /// typechecker than random characters do).
    #[test]
    fn pipeline_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            proptest::sample::select(vec![
                "class", "extends", "modes", "attributor", "snapshot", "mcase",
                "new", "let", "if", "else", "return", "try", "catch", "this",
                "true", "false", "bot", "top", "int", "unit", "Main", "Agent",
                "x", "f", "m1", "m2", "@", "mode", "<", ">", "<=", "(", ")",
                "{", "}", "[", "]", ",", ";", ":", ".", "=", "==", "+", "-",
                "*", "/", "!", "&&", "||", "<|", "_", "?", "0", "1", "3.5",
                "\"s\"",
            ]),
            0..60,
        )
    ) {
        let input = tokens.join(" ");
        let _ = compile(&input);
    }

    /// Mutations of a valid program — random single-token deletions —
    /// never panic, and either compile or produce diagnostics.
    #[test]
    fn pipeline_survives_mutations(cut in 0usize..400) {
        let src = "modes { low <= high; }
            class Agent@mode<? <= X> {
              mcase<int> depth = mcase{ low: 1; high: 2; };
              attributor {
                if (Ext.battery() >= 0.5) { return high; } else { return low; }
              }
              int work(int n) { return n * (this.depth <| X); }
            }
            class Main {
              int main() {
                let da = new Agent();
                let Agent a = snapshot da [_, _];
                return a.work(10);
              }
            }";
        let bytes = src.as_bytes();
        if cut >= bytes.len() {
            return Ok(());
        }
        // Remove one character (keeping UTF-8 validity: the source is ASCII).
        let mut mutated = String::with_capacity(src.len());
        mutated.push_str(&src[..cut]);
        mutated.push_str(&src[cut + 1..]);
        let _ = compile(&mutated);
    }
}
