//! The Energy Types baseline: the purely *static* predecessor system
//! (Cohen et al., OOPSLA 2012) that §2's "Bob" programs in.
//!
//! Energy Types has mode qualifiers and the waterfall invariant but no
//! dynamic modes: no attributors, no `snapshot`, no `?`. This module
//! implements that restriction as an extra check layered over the ENT
//! typechecker, so the evaluation can demonstrate which programs are
//! expressible proactively and which require ENT's adaptive features.

use ent_core::{compile, CompileError, CompiledProgram};
use ent_syntax::{Expr, ExprKind, Program, Stmt};

/// A dynamic feature found by the Energy Types restriction check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynamicFeature {
    /// A class declared with the dynamic mode `?` (and hence an attributor).
    DynamicClass(String),
    /// A method-level attributor.
    MethodAttributor(String),
    /// A `snapshot` expression.
    Snapshot,
}

impl std::fmt::Display for DynamicFeature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicFeature::DynamicClass(c) => {
                write!(
                    f,
                    "class `{c}` has a dynamic mode (not expressible in Energy Types)"
                )
            }
            DynamicFeature::MethodAttributor(m) => {
                write!(
                    f,
                    "method `{m}` has an attributor (not expressible in Energy Types)"
                )
            }
            DynamicFeature::Snapshot => {
                f.write_str("`snapshot` is not expressible in Energy Types")
            }
        }
    }
}

/// The result of checking a program against the Energy Types subset.
#[derive(Debug)]
pub enum EnergyTypesResult {
    /// The program compiles and stays within the static subset.
    Static(CompiledProgram),
    /// The program compiles under ENT but uses dynamic features — "Bob"
    /// cannot write it.
    RequiresEnt(Vec<DynamicFeature>),
    /// The program does not compile under ENT either.
    Rejected(CompileError),
}

/// Checks a source program against the Energy Types (static-only) subset.
///
/// # Example
///
/// ```
/// use ent_baselines::{check_energy_types, EnergyTypesResult};
///
/// // Fully static: fine under Energy Types.
/// let bob = "modes { low <= high; }
///     class Site@mode<S> { int n; }
///     class Main { unit main() { let s = new Site@mode<high>(1); return {}; } }";
/// assert!(matches!(check_energy_types(bob), EnergyTypesResult::Static(_)));
///
/// // Adaptive: needs ENT.
/// let christina = "modes { low <= high; }
///     class D@mode<?> { attributor { return low; } }
///     class Main { unit main() { let d = new D(); return {}; } }";
/// assert!(matches!(check_energy_types(christina), EnergyTypesResult::RequiresEnt(_)));
/// ```
pub fn check_energy_types(src: &str) -> EnergyTypesResult {
    let compiled = match compile(src) {
        Ok(c) => c,
        Err(e) => return EnergyTypesResult::Rejected(e),
    };
    let features = dynamic_features(&compiled.program);
    if features.is_empty() {
        EnergyTypesResult::Static(compiled)
    } else {
        EnergyTypesResult::RequiresEnt(features)
    }
}

/// Collects every use of a dynamic feature in a program.
pub fn dynamic_features(program: &Program) -> Vec<DynamicFeature> {
    let mut found = Vec::new();
    for class in &program.classes {
        if class.mode_params.dynamic {
            found.push(DynamicFeature::DynamicClass(
                class.name.as_str().to_string(),
            ));
        }
        for method in &class.methods {
            if method.attributor.is_some() {
                found.push(DynamicFeature::MethodAttributor(format!(
                    "{}::{}",
                    class.name, method.name
                )));
            }
            scan_expr(&method.body, &mut found);
        }
        for field in &class.fields {
            if let Some(init) = &field.init {
                scan_expr(init, &mut found);
            }
        }
        if let Some(attributor) = &class.attributor {
            scan_expr(&attributor.body, &mut found);
        }
    }
    found
}

fn scan_expr(e: &Expr, found: &mut Vec<DynamicFeature>) {
    match &e.kind {
        ExprKind::Snapshot { expr, .. } => {
            found.push(DynamicFeature::Snapshot);
            scan_expr(expr, found);
        }
        ExprKind::Field { recv, .. } => scan_expr(recv, found),
        ExprKind::New { ctor_args, .. } => ctor_args.iter().for_each(|a| scan_expr(a, found)),
        ExprKind::Call { recv, args, .. } => {
            scan_expr(recv, found);
            args.iter().for_each(|a| scan_expr(a, found));
        }
        ExprKind::Builtin { args, .. } => args.iter().for_each(|a| scan_expr(a, found)),
        ExprKind::Cast { expr, .. }
        | ExprKind::Unary { expr, .. }
        | ExprKind::Elim { expr, .. } => scan_expr(expr, found),
        ExprKind::MCase { arms, .. } => arms.iter().for_each(|(_, a)| scan_expr(a, found)),
        ExprKind::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, found);
            scan_expr(rhs, found);
        }
        ExprKind::If { cond, then, els } => {
            scan_expr(cond, found);
            scan_expr(then, found);
            if let Some(els) = els {
                scan_expr(els, found);
            }
        }
        ExprKind::Block(stmts) => {
            for s in stmts {
                match s {
                    Stmt::Let { value, .. } => scan_expr(value, found),
                    Stmt::Expr(e) | Stmt::Return(e) => scan_expr(e, found),
                }
            }
        }
        ExprKind::Try { body, handler } => {
            scan_expr(body, found);
            scan_expr(handler, found);
        }
        ExprKind::ArrayLit(items) => items.iter().for_each(|a| scan_expr(a, found)),
        ExprKind::Var(_) | ExprKind::This | ExprKind::Lit(_) | ExprKind::ModeConst(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_program_is_accepted() {
        let src = "modes { low <= high; }
            class Heavy@mode<H> { int run() { return 1; } }
            class Main {
              int main() {
                let h = new Heavy@mode<high>();
                return h.run();
              }
            }";
        assert!(matches!(
            check_energy_types(src),
            EnergyTypesResult::Static(_)
        ));
    }

    #[test]
    fn dynamic_class_is_flagged() {
        let src = "modes { low <= high; }
            class D@mode<?> { attributor { return low; } }
            class Main { unit main() { let d = new D(); return {}; } }";
        match check_energy_types(src) {
            EnergyTypesResult::RequiresEnt(features) => {
                assert!(features
                    .iter()
                    .any(|f| matches!(f, DynamicFeature::DynamicClass(_))));
            }
            other => panic!("expected RequiresEnt, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_flagged_even_without_dynamic_class_in_scope() {
        let src = "modes { low <= high; }
            class D@mode<?> {
              attributor { return low; }
              int f() { return 1; }
            }
            class Main {
              int main() {
                let d = new D();
                let D s = snapshot d [_, _];
                return s.f();
              }
            }";
        match check_energy_types(src) {
            EnergyTypesResult::RequiresEnt(features) => {
                assert!(features.contains(&DynamicFeature::Snapshot));
            }
            other => panic!("expected RequiresEnt, got {other:?}"),
        }
    }

    #[test]
    fn method_attributor_is_flagged() {
        let src = "modes { low <= high; }
            class S@mode<X> {
              int n;
              int f() attributor { return low; } { return this.n; }
            }";
        match check_energy_types(src) {
            EnergyTypesResult::RequiresEnt(features) => {
                assert!(features
                    .iter()
                    .any(|f| matches!(f, DynamicFeature::MethodAttributor(_))));
            }
            other => panic!("expected RequiresEnt, got {other:?}"),
        }
    }

    #[test]
    fn ill_typed_program_is_rejected() {
        let src = "class Main { int main() { return true; } }";
        assert!(matches!(
            check_energy_types(src),
            EnergyTypesResult::Rejected(_)
        ));
    }

    #[test]
    fn every_benchmark_requires_ent() {
        // The paper's point: the benchmarks' adaptive structure is not
        // expressible in the purely static system.
        for spec in ent_workloads::all_benchmarks() {
            let platform = ent_workloads::platform_of(spec.primary_platform());
            let src = ent_workloads::e2_program(&spec, &platform, 1);
            assert!(
                matches!(check_energy_types(&src), EnergyTypesResult::RequiresEnt(_)),
                "{} should need ENT",
                spec.name
            );
        }
    }
}
