//! The "Alice" baseline of §2: hand-rolled if-then-else energy management
//! with no mode types at all.
//!
//! Alice's program guards every use of a workload with an explicit battery
//! check. Functionally it adapts like the ENT E2 program, but nothing
//! enforces consistency between the checks — the motivating problem the
//! type system solves. The harness uses this baseline to confirm that
//! ENT's discipline costs no energy relative to ad-hoc adaptation.

use ent_energy::Platform;
use ent_workloads::{unit_scale, BenchmarkSpec, Shape};

/// Generates the untyped (mode-free) adaptive equivalent of a benchmark's
/// E2 program: the same QoS decisions made with raw `if` cascades.
pub fn untyped_e2_program(spec: &BenchmarkSpec, platform: &Platform, workload: usize) -> String {
    let items = spec.workload_items[workload];
    let kind = spec.work_kind;
    match spec.shape {
        Shape::Batch { .. } => {
            let scale = unit_scale(spec, platform);
            let q = spec.qos_factors;
            format!(
                "class App {{
  unit runOn(double items) {{
    // Ad-hoc adaptation: every use site re-checks the battery.
    let quality = if (Ext.battery() >= 0.9) {{ {q2:.4} }}
                  else if (Ext.battery() >= 0.7) {{ {q1:.4} }}
                  else {{ {q0:.4} }};
    Sim.work(\"{kind}\", items * quality * {scale:.4});
    return {{}};
  }}
}}
class Main {{
  unit main() {{
    let a = new App();
    a.runOn({items:.4});
    return {{}};
  }}
}}",
                q0 = q[0],
                q1 = q[1],
                q2 = q[2],
            )
        }
        Shape::TimeFixed { durations_s, duty } => {
            let ticks = durations_s[workload] as i64;
            let busy_units =
                platform.ops_per_sec / ent_energy::WorkKind::parse(spec.work_kind).ops_per_unit();
            let wfactor = ent_workloads::workload_duty_factor(spec, workload);
            format!(
                "class App {{
  unit loop(int remaining, double d) {{
    if (remaining <= 0) {{ return {{}}; }}
    Sim.work(\"{kind}\", d * {busy_units:.4});
    Sim.sleepMs(1000 - Math.floor(d * 1000.0));
    return this.loop(remaining - 1, d);
  }}
  unit run() {{
    let base = if (Ext.battery() >= 0.9) {{ {d2:.4} }}
               else if (Ext.battery() >= 0.7) {{ {d1:.4} }}
               else {{ {d0:.4} }};
    this.loop({ticks}, Math.fmin(0.95, base * {wfactor:.4}));
    return {{}};
  }}
}}
class Main {{
  unit main() {{
    let a = new App();
    a.run();
    return {{}};
  }}
}}",
                d0 = duty[0],
                d1 = duty[1],
                d2 = duty[2],
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ent_core::compile;
    use ent_energy::PlatformKind;
    use ent_runtime::{run, RuntimeConfig};
    use ent_workloads::{all_benchmarks, battery_for_boot, benchmark, platform_of, run_e2};

    #[test]
    fn untyped_programs_compile() {
        for spec in all_benchmarks() {
            let platform = platform_of(spec.primary_platform());
            let src = untyped_e2_program(&spec, &platform, 1);
            compile(&src)
                .unwrap_or_else(|e| panic!("{} untyped failed:\n{}", spec.name, e.render(&src)));
        }
    }

    #[test]
    fn untyped_adaptation_matches_ent_energy_modulo_overhead() {
        // ENT's discipline should cost (almost) nothing: the typed E2 run
        // and the ad-hoc run at the same boot mode consume comparable
        // energy.
        let spec = benchmark("pagerank").unwrap();
        let platform = platform_of(PlatformKind::SystemA);
        for boot in 0..3 {
            let ent = run_e2(&spec, PlatformKind::SystemA, boot, 2, 9);
            let src = untyped_e2_program(&spec, &platform, 2);
            let compiled = compile(&src).unwrap();
            let untyped = run(
                &compiled,
                platform_of(PlatformKind::SystemA),
                RuntimeConfig {
                    battery_level: battery_for_boot(boot),
                    seed: 9,
                    ..RuntimeConfig::default()
                },
            );
            let uj = untyped.measurement.energy_j;
            let rel = (ent.energy_j - uj).abs() / uj;
            assert!(
                rel < 0.05,
                "boot {boot}: ent {} vs untyped {uj}",
                ent.energy_j
            );
        }
    }
}
