//! Baseline systems the paper compares ENT against.
//!
//! * [`check_energy_types`] — the purely static Energy Types system
//!   (§2's "Bob"): ENT minus attributors, `snapshot`, and dynamic modes.
//! * [`untyped_e2_program`] — §2's "Alice": ad-hoc if-then-else battery
//!   adaptation with no mode types.
//! * [`silent_config`] / [`java_config`] — runtime presets for the paper's
//!   "silent" E1 counterpart (exceptions suppressed, tagging kept) and the
//!   Figure 6 no-op baseline (no tagging, no modeled snapshot cost).

mod energy_types;
mod untyped;

use ent_runtime::RuntimeConfig;

pub use energy_types::{check_energy_types, dynamic_features, DynamicFeature, EnergyTypesResult};
pub use untyped::untyped_e2_program;

/// The paper's "silent" configuration: the runtime type system never
/// throws, but mode tagging stays in place (§6.2, E1).
pub fn silent_config(battery_level: f64, seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        silent: true,
        battery_level,
        seed,
        ..RuntimeConfig::default()
    }
}

/// The Figure 6 overhead baseline: no runtime tagging, snapshots cost
/// nothing.
pub fn java_config(battery_level: f64, seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        silent: true,
        tagging: false,
        battery_level,
        seed,
        ..RuntimeConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_flags() {
        let s = silent_config(0.5, 1);
        assert!(s.silent && s.tagging);
        assert_eq!(s.battery_level, 0.5);
        let j = java_config(0.9, 2);
        assert!(j.silent && !j.tagging);
    }
}
