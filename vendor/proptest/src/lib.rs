//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must build and test without crates.io access, so this
//! vendored crate re-implements the (small) proptest API surface the test
//! suites use: the `proptest!`/`prop_oneof!`/`prop_assert*!` macros, the
//! `Strategy` combinators (`prop_map`, `prop_flat_map`, `prop_filter`,
//! `prop_filter_map`, `prop_recursive`), `Just`, `any`, numeric range and
//! tuple strategies, `collection::vec`, `option::of`, `sample::select`,
//! and string strategies from a small regex subset (`.`/char classes with
//! `{m,n}` repetition).
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking: a failing case panics with the assertion message;
//! - deterministic seeding per test name (no persistence files — any
//!   `.proptest-regressions` files in the tree are simply unread);
//! - `prop_assume!` ends the case successfully instead of resampling.

use std::marker::PhantomData;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Errors and configuration
// ---------------------------------------------------------------------------

/// A test-case failure (upstream: `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// RNG (SplitMix64 — deterministic per test name)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift reduction; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// The Strategy trait and boxing
// ---------------------------------------------------------------------------

/// How many times filtering combinators locally resample before giving up
/// and bubbling the rejection to the case loop.
const LOCAL_RETRIES: u32 = 256;

pub trait Strategy {
    type Value;

    /// Draws one value; `None` means a filter rejected the draw.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn prop_filter_map<O, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    /// Bounded recursive generation: after `depth` expansions the strategy
    /// bottoms out at the original leaves. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let expanded = f(current).boxed();
            current = WeightedUnion {
                leaf: leaf.clone(),
                expanded,
                leaf_weight: 0.25,
            }
            .boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.sample(rng)
    }
}

pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample_dyn(rng)
    }
}

// ---------------------------------------------------------------------------
// Combinator strategies
// ---------------------------------------------------------------------------

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let v = self.inner.sample(rng)?;
        (self.f)(v).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.sample(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.sample(rng) {
                if let Some(o) = (self.f)(v) {
                    return Some(o);
                }
            }
        }
        None
    }
}

struct WeightedUnion<T> {
    leaf: BoxedStrategy<T>,
    expanded: BoxedStrategy<T>,
    leaf_weight: f64,
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        if rng.unit_f64() < self.leaf_weight {
            self.leaf.sample(rng)
        } else {
            self.expanded.sample(rng)
        }
    }
}

/// Uniform choice between boxed alternatives — the engine of `prop_oneof!`.
pub struct UnionStrategy<T> {
    arms: Vec<BoxedStrategy<T>>,
}

pub fn union<T>(arms: Vec<BoxedStrategy<T>>) -> UnionStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    UnionStrategy { arms }
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Leaf strategies: Just, any, ranges, tuples, strings
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Primitive types `any::<T>()` can generate.
pub trait ArbPrimitive: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

impl ArbPrimitive for bool {
    fn generate(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbPrimitive for f64 {
    fn generate(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbPrimitive for $t {
            fn generate(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(PhantomData<T>);

pub fn any<T: ArbPrimitive>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbPrimitive> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                Some((self.start as i128 + pick as i128) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                Some((*self.start() as i128 + pick as i128) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident $v:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($v,)+) = self;
                Some(($($v.sample(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (S0 s0)
    (S0 s0, S1 s1)
    (S0 s0, S1 s1, S2 s2)
    (S0 s0, S1 s1, S2 s2, S3 s3)
    (S0 s0, S1 s1, S2 s2, S3 s3, S4 s4)
    (S0 s0, S1 s1, S2 s2, S3 s3, S4 s4, S5 s5)
    (S0 s0, S1 s1, S2 s2, S3 s3, S4 s4, S5 s5, S6 s6)
    (S0 s0, S1 s1, S2 s2, S3 s3, S4 s4, S5 s5, S6 s6, S7 s7)
}

/// String strategies from a small regex subset: `.`, `[a-z0-9_]`-style
/// classes, literal characters, with optional `{m}`/`{m,n}`/`?`/`*`/`+`
/// repetition. This covers every pattern the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> Option<String> {
        Some(pattern::generate(self, rng))
    }
}

mod pattern {
    use super::TestRng;

    enum Atom {
        Any,
        Class(Vec<(char, char)>),
        Lit(char),
    }

    fn parse(pat: &str) -> Vec<(Atom, u32, u32)> {
        let mut atoms = Vec::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => {
                    let mut ranges = Vec::new();
                    let mut inner: Vec<char> = Vec::new();
                    for c2 in chars.by_ref() {
                        if c2 == ']' {
                            break;
                        }
                        inner.push(c2);
                    }
                    let mut i = 0;
                    while i < inner.len() {
                        if i + 2 < inner.len() && inner[i + 1] == '-' {
                            ranges.push((inner[i], inner[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((inner[i], inner[i]));
                            i += 1;
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => Atom::Lit(chars.next().unwrap_or('\\')),
                other => Atom::Lit(other),
            };
            // Optional quantifier.
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    for c2 in chars.by_ref() {
                        if c2 == '}' {
                            break;
                        }
                        body.push(c2);
                    }
                    match body.split_once(',') {
                        Some((m, n)) => {
                            (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(0))
                        }
                        None => {
                            let m = body.trim().parse().unwrap_or(1);
                            (m, m)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    fn sample_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Lit(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| (*b as u64).saturating_sub(*a as u64) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for (a, b) in ranges {
                    let size = (*b as u64).saturating_sub(*a as u64) + 1;
                    if pick < size {
                        return char::from_u32(*a as u32 + pick as u32).unwrap_or(*a);
                    }
                    pick -= size;
                }
                ranges.first().map(|(a, _)| *a).unwrap_or('a')
            }
            Atom::Any => {
                // Mostly printable ASCII, with occasional control and
                // non-ASCII characters to stress lexers properly.
                match rng.below(20) {
                    0 => *['\n', '\t', '\r', '\0', '\x7f']
                        .get(rng.below(5) as usize)
                        .unwrap_or(&'\n'),
                    1 => loop {
                        if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                            break c;
                        }
                    },
                    _ => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' '),
                }
            }
        }
    }

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pat) {
            let count = lo + rng.below((hi - lo + 1) as u64) as u32;
            for _ in 0..count {
                out.push(sample_char(&atom, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// collection / option / sample modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.below(4) == 0 {
                Some(None)
            } else {
                Some(Some(self.inner.sample(rng)?))
            }
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        choices: Vec<T>,
    }

    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select needs at least one choice");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.below(self.choices.len() as u64) as usize;
            Some(self.choices[i].clone())
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut case = 0u32;
            let mut rejects = 0u32;
            while case < config.cases {
                match $crate::Strategy::sample(&strategy, &mut rng) {
                    ::std::option::Option::None => {
                        rejects += 1;
                        assert!(
                            rejects < 65_536,
                            "too many strategy rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::std::option::Option::Some(($($arg,)+)) => {
                        let outcome: $crate::TestCaseResult = (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        if let ::std::result::Result::Err(e) = outcome {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name), case, e
                            );
                        }
                        case += 1;
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No resampling machinery: an unmet assumption just ends the
            // case successfully.
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::TestRng::for_test("shape");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z][a-z0-9_]{0,5}", &mut rng).unwrap();
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = Strategy::sample(&(-50i64..50), &mut rng).unwrap();
            assert!((-50..50).contains(&x));
            let y = Strategy::sample(&(2usize..=6), &mut rng).unwrap();
            assert!((2..=6).contains(&y));
            let f = Strategy::sample(&(0.0f64..1.0), &mut rng).unwrap();
            assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(a in 0usize..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            if b {
                return Ok(());
            }
            prop_assert_eq!(a, a);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_vec(v in crate::collection::vec(prop_oneof![Just(1), Just(2)], 0..5)) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
