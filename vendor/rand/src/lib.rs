//! Offline stand-in for the `rand` crate.
//!
//! The workspace must build without crates.io access, so this vendored
//! crate provides exactly the API surface the repo uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen` for primitive types —
//! backed by xoshiro256++ (seeded through SplitMix64). It is a different
//! stream than upstream `rand`'s `StdRng`, which is fine here: nothing in
//! the repo pins upstream output values, only determinism per seed.

/// Types that can be sampled uniformly from a generator's raw output.
///
/// Stands in for `rand`'s `Standard: Distribution<T>` plumbing.
pub trait UniformSample {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface (upstream: `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value of type `T`; `f64` is uniform in `[0, 1)`.
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic seeding (upstream: `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl UniformSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and more than adequate for simulation
    /// noise. Seeded from a `u64` via SplitMix64 as the xoshiro authors
    /// recommend.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
