//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `BatchSize` — with a
//! simple fixed-budget measurement loop instead of criterion's statistics.
//! Good enough to keep `cargo bench` runnable offline; not a precision
//! instrument.

use std::time::{Duration, Instant};

/// Re-export for parity with criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measurement budget per benchmark. Deliberately small: these are smoke
/// benches, not statistically rigorous measurements.
const WARMUP: Duration = Duration::from_millis(50);
const BUDGET: Duration = Duration::from_millis(300);

pub struct Bencher {
    /// Total time across timed iterations.
    elapsed: Duration,
    /// Number of timed iterations.
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < BUDGET {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            black_box(routine(input));
        }
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while wall.elapsed() < BUDGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.elapsed = timed;
        self.iters = iters;
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher::new();
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no iterations)");
    } else {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{name:<40} {per_iter:>14.1} ns/iter ({} iters)", b.iters);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
