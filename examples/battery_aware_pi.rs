//! A Raspberry Pi time-lapse camera (the paper's System B `camera`
//! benchmark): a time-fixed workload whose energy savings come from
//! *power*, not runtime — run under three battery levels and compare.
//!
//! ```sh
//! cargo run -p ent-bench --example battery_aware_pi
//! ```

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RuntimeConfig};

const CAMERA: &str = r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Camera@mode<? <= C> {
  // Per-mode capture settings: resolution scales the per-frame encode
  // work, the interval sets the duty cycle.
  mcase<double> frameWork = mcase{
    energy_saver: 100000000.0;
    managed: 190000000.0;
    full_throttle: 300000000.0;
  };
  mcase<int> intervalMs = mcase{
    energy_saver: 1500;
    managed: 1000;
    full_throttle: 500;
  };

  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }

  unit timelapse(int shots) {
    if (shots <= 0) { return {}; }
    Sim.work("encode", this.frameWork <| C);
    Sim.sleepMs(this.intervalMs <| C);
    return this.timelapse(shots - 1);
  }
}

class Main {
  unit main() {
    let dc = new Camera();
    let Camera c = snapshot dc [_, _];
    c.timelapse(60);
    return {};
  }
}
"#;

fn main() {
    let compiled = compile(CAMERA).expect("the camera program typechecks");

    println!("Raspberry Pi time-lapse (60 shots) under three battery levels:\n");
    for (label, battery) in [("90%", 0.9), ("60%", 0.6), ("30%", 0.3)] {
        let result = run(
            &compiled,
            Platform::system_b(),
            RuntimeConfig {
                battery_level: battery,
                ..RuntimeConfig::default()
            },
        );
        result.value.expect("camera run completes");
        let m = result.measurement;
        println!(
            "battery {label:>4}: {:6.1} J over {:6.1} s  (avg {:.2} W)",
            m.energy_j,
            m.time_s,
            m.energy_j / m.time_s
        );
    }
    println!("\nLower battery → cheaper frames and longer intervals → lower average power.");
}
