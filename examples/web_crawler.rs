//! The paper's running example (Listing 1): an energy-aware web crawler
//! with a dynamic Agent, dynamic Sites, bounded snapshots, mode cases, and
//! the EnergyException recovery pattern of the E1 experiments.
//!
//! ```sh
//! cargo run -p ent-bench --example web_crawler
//! ```

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RuntimeConfig};

const CRAWLER: &str = r#"
modes { energy_saver <= managed; managed <= full_throttle; }

// A site's energy mode depends on how many resources it holds — state the
// program only learns at run time (the paper's "state-dependent" case).
class Site@mode<? <= S> {
  int resources;
  attributor {
    if (this.resources > 200) { return full_throttle; }
    else if (this.resources > 50) { return managed; }
    else { return energy_saver; }
  }
  int crawl(int depth) {
    Sim.work("net", Math.toDouble(this.resources * depth) * 20000000.0);
    return this.resources * depth;
  }
}

// The crawling agent's mode depends on the battery — the "context-
// dependent" case. Its crawl depth adapts through a mode case.
class Agent@mode<? <= X> {
  mcase<int> depth = mcase{ energy_saver: 1; managed: 2; full_throttle: 3; };
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  int work(int resources) {
    let ds = new Site(resources);
    // The [_, X] bound is the waterfall in action: a Site hungrier than
    // this Agent's mode raises an EnergyException at snapshot time.
    return try {
      let Site s = snapshot ds [_, X];
      s.crawl(this.depth <| X)
    } catch {
      IO.print("  EnergyException: site too heavy for the current mode; skipping");
      0
    };
  }
}

class Main {
  int main() {
    let da = new Agent();
    let Agent a = snapshot da [_, _];
    // Crawl three sites of growing size.
    return a.work(30) + a.work(120) + a.work(800);
  }
}
"#;

fn main() {
    let compiled = compile(CRAWLER).expect("the crawler typechecks");

    for (label, battery) in [
        ("full battery", 0.95),
        ("half battery", 0.6),
        ("low battery", 0.3),
    ] {
        let result = run(
            &compiled,
            Platform::system_a(),
            RuntimeConfig {
                battery_level: battery,
                ..RuntimeConfig::default()
            },
        );
        println!("{label} ({:.0}%):", battery * 100.0);
        for line in &result.output {
            println!("  {line}");
        }
        println!(
            "  crawled {} pages, {:.1} J, {} snapshot(s), {} exception(s)\n",
            result.value.expect("crawler completes"),
            result.measurement.energy_j,
            result.stats.snapshots,
            result.stats.energy_exceptions,
        );
    }
}
