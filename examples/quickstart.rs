//! Quickstart: compile and run a small battery-aware ENT program.
//!
//! ```sh
//! cargo run -p ent-bench --example quickstart
//! ```

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RuntimeConfig};

const PROGRAM: &str = r#"
modes { energy_saver <= managed; managed <= full_throttle; }

// A dynamic worker: its mode is decided at run time by the attributor,
// which inspects the battery level.
class Worker@mode<? <= W> {
  mcase<int> chunk = mcase{ energy_saver: 1; managed: 4; full_throttle: 16; };

  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }

  int step(int n) {
    // The mode case eliminates at this worker's snapshotted mode, so the
    // amount of work adapts to the available battery.
    let size = this.chunk <| W;
    Sim.work("cpu", Math.toDouble(size) * 100000000.0);
    return size;
  }
}

class Main {
  int main() {
    let dw = new Worker();
    // snapshot: evaluate the attributor, fix the mode, get a static type.
    let Worker w = snapshot dw [_, _];
    return w.step(1);
  }
}
"#;

fn main() {
    let compiled = compile(PROGRAM).expect("the quickstart program typechecks");

    for (label, battery) in [("90%", 0.9), ("60%", 0.6), ("30%", 0.3)] {
        let result = run(
            &compiled,
            Platform::system_a(),
            RuntimeConfig {
                battery_level: battery,
                ..RuntimeConfig::default()
            },
        );
        let chunk = result.value.expect("run succeeds");
        println!(
            "battery {label:>4}: worked a chunk of {chunk} units, {:.1} J in {:.2} s",
            result.measurement.energy_j, result.measurement.time_s,
        );
    }
}
