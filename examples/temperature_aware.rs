//! Temperature-aware programming (the paper's E3 experiment): a render
//! loop that snapshots a `Sleep` object after each task; its attributor
//! reads the CPU temperature and a mode case picks the cooling interval.
//! The same workload without regulation climbs toward thermal saturation.
//!
//! ```sh
//! cargo run -p ent-bench --example temperature_aware
//! ```

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RuntimeConfig};

fn program(regulated: bool) -> String {
    let rest = if regulated {
        "let dsl = new Sleep();
     let Sleep sl = snapshot dsl [_, overheating];
     sl.rest();"
    } else {
        "// unregulated: no cooling pause"
    };
    format!(
        r#"
modes {{ safe <= hot; hot <= overheating; }}

class Sleep@mode<? <= S> {{
  attributor {{
    if (Ext.temperature() >= 65.0) {{ return overheating; }}
    else if (Ext.temperature() >= 60.0) {{ return hot; }}
    else {{ return safe; }}
  }}
  mcase<int> interval = mcase{{ safe: 0; hot: 250; overheating: 1000; }};
  unit rest() {{
    Sim.sleepMs(this.interval <| S);
    return {{}};
  }}
}}

class Renderer@mode<overheating> {{
  unit render(int frames) {{
    if (frames <= 0) {{ return {{}}; }}
    Sim.work("render", 1500000000.0);
    {rest}
    return this.render(frames - 1);
  }}
}}

class Main {{
  unit main() {{
    let r = new Renderer();
    r.render(50);
    return {{}};
  }}
}}
"#
    )
}

fn main() {
    for (label, regulated) in [("ENT (regulated)", true), ("Java (unregulated)", false)] {
        let compiled = compile(&program(regulated)).expect("program typechecks");
        let result = run(
            &compiled,
            Platform::system_a(),
            RuntimeConfig {
                trace_interval_s: Some(2.0),
                ..RuntimeConfig::default()
            },
        );
        result.value.expect("render run completes");
        let temps: Vec<f64> = result.trace.iter().map(|(_, c)| *c).collect();
        let peak = temps.iter().copied().fold(f64::MIN, f64::max);
        println!(
            "{label:<20} peak {peak:.1} °C over {:.0} s",
            result.measurement.time_s
        );
        print!("  trace: ");
        for chunk in temps.chunks((temps.len() / 40).max(1)) {
            let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let c = if avg >= 65.0 {
                '#'
            } else if avg >= 60.0 {
                '+'
            } else {
                '.'
            };
            print!("{c}");
        }
        println!("   (. <60°C, + 60–65°C, # >65°C)\n");
    }
}
