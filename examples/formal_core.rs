//! A tour of the formal core: watch Figure 5's small-step machine reduce
//! the snapshot of a dynamic object, rule by rule.
//!
//! ```sh
//! cargo run -p ent-bench --example formal_core
//! ```

use ent_core::compile;
use ent_modes::StaticMode;
use ent_runtime::formal::{lower, Machine, Term};

const SOURCE: &str = "
modes { low <= high; }
class Probe@mode<? <= P> {
  Level level;
  attributor { return high; }
}
class Level { }
class Main {
  Object main() {
    let dp = new Probe(new Level());
    let Probe p = snapshot dp [_, _];
    return p;
  }
}";

/// Drills through evaluation contexts (closures, lets, argument
/// positions) to the active redex and names it.
fn describe(term: &Term) -> String {
    match term {
        Term::Cl(mode, body) => format!("cl({mode}, {})", describe(body)),
        Term::Let(x, rhs, _) if !rhs.is_value() => {
            format!("let {x} = {} in …", describe(rhs))
        }
        Term::Let(x, _, _) => format!("let {x} = v in …  — substituting"),
        Term::New { class, args, .. } => match args.iter().find(|a| !a.is_value()) {
            Some(inner) => describe(inner),
            None => format!("new {class}(v̄)  — allocating"),
        },
        Term::Snapshot(inner, lo, hi) if inner.is_value() => {
            format!("snapshot o [{lo}, {hi}]  — invoking the attributor")
        }
        Term::Snapshot(inner, _, _) => describe(inner),
        Term::Check { body, lo, hi, .. } if body.is_value() => {
            format!("check(m', {lo}, {hi}, o)  — bounds check, then copy")
        }
        Term::Check { body, .. } => format!("check({}, …)", describe(body)),
        Term::Call(recv, md, _) if recv.is_value() => {
            format!("o.{md}(v̄)  — message send (dfall checked)")
        }
        Term::Call(recv, _, _) => describe(recv),
        Term::Field(e, fd) if e.is_value() => format!("o.{fd}  — field projection"),
        Term::Field(e, _) => describe(e),
        Term::Obj(o) => format!("obj(α{}, {}⟨{}⟩, v̄)", o.id, o.class, o.mode),
        other => format!("{other:?}"),
    }
}

fn main() {
    let compiled = compile(SOURCE).expect("the tour program typechecks");
    let program = lower(&compiled.program).expect("the tour program is in the FJ core");
    let mut machine = Machine::new(&program);

    let mut term = machine.boot().expect("boot(P) = cl(⊤, main-body)");
    println!("Reducing boot(P) under ⊤ — one line per reduction step:\n");
    let mut step = 0;
    while !term.is_value() {
        println!("  step {step:>2}: {}", describe(&term));
        term = machine
            .step(term, &StaticMode::Top)
            .expect("the tour program is well-typed, so it cannot get stuck");
        step += 1;
    }
    println!("\nFinal value:");
    if let Term::Obj(o) = &term {
        println!(
            "  obj(α{}, {}⟨{}⟩, …) — the Probe, now tagged with the attributor's mode",
            o.id, o.class, o.mode
        );
    }
    println!("\n({step} steps; the snapshot reduced to check(…), the check to a fresh");
    println!(" tagged object — exactly Figure 5's rules.)");
}
